#include "core/candidate_pool.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>

namespace cdd {

namespace {

std::size_t RoundUpToRowAlign(std::size_t n) {
  const std::size_t a = CandidatePool::kRowAlign;
  return ((std::max<std::size_t>(n, 1) + a - 1) / a) * a;
}

std::size_t RoundUpTo64(std::size_t bytes) {
  return (bytes + 63) / 64 * 64;
}

}  // namespace

CandidatePool::CandidatePool(std::size_t n, std::size_t capacity,
                             std::size_t machines)
    : CandidatePool(n, capacity, core::ActivePoolAllocator(), machines) {}

CandidatePool::CandidatePool(std::size_t n, std::size_t capacity,
                             core::PoolAllocator& allocator,
                             std::size_t machines)
    : n_(n),
      stride_(RoundUpToRowAlign(n)),
      capacity_(std::max<std::size_t>(capacity, 1)),
      machines_(machines) {
  if (n == 0) {
    throw std::invalid_argument("CandidatePool: n must be >= 1");
  }
  if (machines == 0) {
    throw std::invalid_argument("CandidatePool: machines must be >= 1");
  }

  // One contiguous block of 64-byte-aligned sections:
  //   [ seqs | shadow | costs | pinned | splits | shadow-splits ]
  // (the two splits sections exist only for multi-machine pools) so a pool
  // costs its allocator exactly one Allocate and the fallback decision is
  // made once, for all arrays together.
  const std::size_t rows_bytes =
      RoundUpTo64(stride_ * capacity_ * sizeof(JobId));
  const std::size_t costs_bytes = RoundUpTo64(capacity_ * sizeof(Cost));
  const std::size_t pinned_bytes =
      RoundUpTo64(capacity_ * sizeof(std::int32_t));
  const std::size_t splits_bytes =
      machines_ > 1
          ? RoundUpTo64((machines_ - 1) * capacity_ * sizeof(std::int32_t))
          : 0;
  block_bytes_ =
      2 * rows_bytes + costs_bytes + pinned_bytes + 2 * splits_bytes;

  allocator_ = &allocator;
  block_ = allocator_->Allocate(block_bytes_, 64);
  if (block_ == nullptr) {
    // Graceful degradation: a pool that lives in the wrong kind of memory
    // still computes the right answers; record the fallback and carry on.
    core::GlobalPoolStats().fallbacks.fetch_add(1,
                                                std::memory_order_relaxed);
    allocator_ = &core::PoolAllocatorFor(core::PoolBackend::kHost);
    block_ = allocator_->Allocate(block_bytes_, 64);
    if (block_ == nullptr) {
      throw std::bad_alloc();
    }
  }
  backend_ = allocator_->backend();

  auto* base = static_cast<char*>(block_);
  seqs_ = reinterpret_cast<JobId*>(base);
  shadow_ = reinterpret_cast<JobId*>(base + rows_bytes);
  costs_ = reinterpret_cast<Cost*>(base + 2 * rows_bytes);
  pinned_ = reinterpret_cast<std::int32_t*>(base + 2 * rows_bytes +
                                            costs_bytes);
  if (machines_ > 1) {
    splits_ = reinterpret_cast<std::int32_t*>(base + 2 * rows_bytes +
                                              costs_bytes + pinned_bytes);
    shadow_splits_ = reinterpret_cast<std::int32_t*>(
        base + 2 * rows_bytes + costs_bytes + pinned_bytes + splits_bytes);
  }

  // Deterministic initial contents (what the std::vector storage used to
  // guarantee) — also the first-touch pass for the NUMA backend.
  std::memset(seqs_, 0, rows_bytes);
  std::memset(shadow_, 0, rows_bytes);
  std::memset(costs_, 0, costs_bytes);
  std::fill_n(pinned_, capacity_, -1);
  if (machines_ > 1) {
    std::memset(splits_, 0, splits_bytes);
    std::memset(shadow_splits_, 0, splits_bytes);
  }
}

void CandidatePool::Release() noexcept {
  if (block_ != nullptr) {
    allocator_->Deallocate(block_, block_bytes_);
    block_ = nullptr;
  }
}

CandidatePool::~CandidatePool() { Release(); }

CandidatePool::CandidatePool(CandidatePool&& other) noexcept
    : n_(other.n_),
      stride_(other.stride_),
      capacity_(other.capacity_),
      machines_(other.machines_),
      size_(other.size_),
      generation_(other.generation_),
      backend_(other.backend_),
      allocator_(other.allocator_),
      block_(std::exchange(other.block_, nullptr)),
      block_bytes_(other.block_bytes_),
      seqs_(other.seqs_),
      shadow_(other.shadow_),
      costs_(other.costs_),
      pinned_(other.pinned_),
      splits_(other.splits_),
      shadow_splits_(other.shadow_splits_) {}

CandidatePool& CandidatePool::operator=(CandidatePool&& other) noexcept {
  if (this != &other) {
    Release();
    n_ = other.n_;
    stride_ = other.stride_;
    capacity_ = other.capacity_;
    machines_ = other.machines_;
    size_ = other.size_;
    generation_ = other.generation_;
    backend_ = other.backend_;
    allocator_ = other.allocator_;
    block_ = std::exchange(other.block_, nullptr);
    block_bytes_ = other.block_bytes_;
    seqs_ = other.seqs_;
    shadow_ = other.shadow_;
    costs_ = other.costs_;
    pinned_ = other.pinned_;
    splits_ = other.splits_;
    shadow_splits_ = other.shadow_splits_;
  }
  return *this;
}

std::size_t CandidatePool::Append(std::span<const JobId> src) {
  if (src.size() != n_) {
    throw std::invalid_argument(
        "CandidatePool::Append: sequence length mismatch");
  }
  const std::size_t b = AppendUninitialized();
  std::copy(src.begin(), src.end(), seqs_ + b * stride_);
  return b;
}

std::size_t CandidatePool::AppendUninitialized() {
  if (size_ == capacity_) {
    throw std::length_error("CandidatePool: capacity exhausted");
  }
  return size_++;
}

}  // namespace cdd

#pragma once
/// \file types.hpp
/// \brief Fundamental scalar types shared by every module of the library.
///
/// The OR-library benchmark data (Biskup & Feldmann) and the instances of
/// Awasthi et al. are integral, and both O(n) schedule-evaluation algorithms
/// only ever add, subtract and compare instance data.  Keeping times and
/// costs in 64-bit integers makes every evaluation exact and bit-for-bit
/// reproducible across platforms, which the test suite relies on when it
/// cross-checks the evaluators against each other and against the LP oracle.

#include <cstdint>
#include <limits>

namespace cdd {

/// Discrete time unit (processing times, due dates, completion times).
using Time = std::int64_t;

/// Penalty cost.  Products of a Time and a per-unit penalty fit comfortably:
/// the largest benchmark has n = 1000, P_i <= 20, penalties <= 15, so the
/// worst-case objective is far below 2^63.
using Cost = std::int64_t;

/// Index of a job (0-based everywhere in the code; the paper is 1-based).
using JobId = std::int32_t;

/// Sentinel for "no cost computed yet" / "infeasible".
inline constexpr Cost kInfiniteCost = std::numeric_limits<Cost>::max();

}  // namespace cdd

#include "core/cpu_features.hpp"

#include <cstdlib>
#include <string_view>

#include "core/eval_simd.hpp"

namespace cdd::core {

namespace {

CpuFeatures Detect() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#elif defined(__aarch64__)
  // Advanced SIMD is part of the AArch64 baseline; no runtime probe needed.
  features.neon = true;
#endif
  return features;
}

EvalBackend Resolve() {
  const bool simd_runs = raw::SimdBatchAvailable();
  if (const char* env = std::getenv("CDD_EVAL_BACKEND")) {
    const std::string_view value(env);
    if (value == "scalar") return EvalBackend::kScalar;
    if (value == "simd") {
      // Forcing SIMD on a host that cannot execute it would be a crash,
      // not a preference; degrade to scalar (results are identical).
      return simd_runs ? EvalBackend::kSimd : EvalBackend::kScalar;
    }
    // Unknown value: fall through to the automatic choice.
  }
  return simd_runs ? EvalBackend::kSimd : EvalBackend::kScalar;
}

}  // namespace

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

std::string_view ToString(EvalBackend backend) {
  return backend == EvalBackend::kSimd ? "simd" : "scalar";
}

EvalBackend ActiveEvalBackend() {
  static const EvalBackend backend = Resolve();
  return backend;
}

}  // namespace cdd::core

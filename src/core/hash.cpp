#include "core/hash.hpp"

namespace cdd {

namespace {

/// SplitMix64 finalizer (Steele, Lea & Flood; the PCG/xorshift stream
/// seeder).  Bijective on 64-bit words.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t HashCombine(std::uint64_t h, std::uint64_t value) {
  // FNV-1a on the mixed word: xor then multiply by the 64-bit FNV prime.
  h ^= Mix(value);
  return h * 0x100000001b3ULL;
}

std::uint64_t HashBytes(std::uint64_t h, const void* data,
                        std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return HashCombine(h, size);
}

std::uint64_t HashInstance(const Instance& instance) {
  std::uint64_t h = kHashSeed;
  h = HashCombine(h, static_cast<std::uint64_t>(instance.problem()));
  h = HashCombine(h, static_cast<std::uint64_t>(instance.due_date()));
  h = HashCombine(h, instance.size());
  // Single-machine total-penalty instances hash exactly as they did before
  // the parallel-machine tier existed, so every instance_hash recorded in a
  // pre-existing manifest (and every cache key derived from one) is stable.
  if (instance.machines() > 1) {
    h = HashCombine(h, static_cast<std::uint64_t>(instance.machines()));
  }
  if (instance.objective() != ScheduleObjective::kTotalPenalty) {
    h = HashCombine(h,
                    0xea51ULL ^ static_cast<std::uint64_t>(
                                    instance.objective()));
  }
  for (const Job& job : instance.jobs()) {
    h = HashCombine(h, static_cast<std::uint64_t>(job.proc));
    h = HashCombine(h, static_cast<std::uint64_t>(job.min_proc));
    h = HashCombine(h, static_cast<std::uint64_t>(job.early));
    h = HashCombine(h, static_cast<std::uint64_t>(job.tardy));
    h = HashCombine(h, static_cast<std::uint64_t>(job.compress));
  }
  return h;
}

}  // namespace cdd

#pragma once
/// \file cpu_features.hpp
/// \brief One-time CPU-feature detection and evaluation-backend selection.
///
/// The batched evaluators of eval_raw.hpp exist in two builds: the portable
/// scalar walk and the lane-per-candidate SIMD transposition of
/// eval_simd.hpp (AVX2 on x86-64, selected at runtime via cpuid; NEON on
/// aarch64, selected at compile time because it is baseline there).  Both
/// produce bit-identical results — all quantities are exact integers — so
/// the choice is purely a throughput decision and is made exactly once per
/// process:
///
///   1. the CDD_EVAL_BACKEND environment variable ("simd" | "scalar")
///      forces a backend, with "simd" silently degrading to scalar when the
///      host cannot execute it (CI uses this to pin both paths), then
///   2. the SIMD backend is picked whenever the binary carries it and the
///      host CPU supports it, else
///   3. the scalar batch walk.
///
/// Engines never consult this header directly: meta::SequenceObjective,
/// the instance evaluators and par::detail::LaunchFitness all call the
/// raw::EvalCddBatchDispatch / EvalUcddcpBatchDispatch entry points of
/// eval_simd.hpp, which resolve through ActiveEvalBackend().
///
/// Thread-safety: HostCpuFeatures() and ActiveEvalBackend() are
/// resolve-once function-local statics — safe to call concurrently from
/// any thread, and guaranteed to return the same answer for the process
/// lifetime (so two threads can never disagree about the backend).  The
/// same idiom selects the candidate-pool placement backend; see
/// core::ActivePoolBackend() in core/pool_allocator.hpp.

#include <string_view>

namespace cdd::core {

/// Instruction-set capabilities of the executing host, detected once.
struct CpuFeatures {
  bool avx2 = false;  ///< x86-64 AVX2 (256-bit integer SIMD + gathers)
  bool neon = false;  ///< aarch64 Advanced SIMD (baseline on AArch64)
};

/// Cached cpuid/compile-time probe; never throws.
const CpuFeatures& HostCpuFeatures();

/// Which implementation the batched evaluators run through.
enum class EvalBackend { kScalar, kSimd };

/// Stable lower-case name ("scalar" | "simd"), for logs and benches.
std::string_view ToString(EvalBackend backend);

/// The backend every dispatching call site uses, resolved once per process
/// (environment override first, then the CPU probe — see the file comment).
EvalBackend ActiveEvalBackend();

}  // namespace cdd::core

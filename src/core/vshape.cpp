#include "core/vshape.hpp"

#include <algorithm>

#include "core/eval_cdd.hpp"

namespace cdd {

bool IsVShaped(const Instance& instance, std::span<const JobId> seq,
               std::int32_t pinned) {
  const auto n = static_cast<std::int32_t>(seq.size());
  // Early side (positions 0..pinned): nonincreasing P/alpha.
  for (std::int32_t k = 0; k + 1 <= pinned; ++k) {
    const Job& a = instance.job(static_cast<std::size_t>(seq[k]));
    const Job& b = instance.job(static_cast<std::size_t>(seq[k + 1]));
    // P_a/alpha_a >= P_b/alpha_b  <=>  P_a*alpha_b >= P_b*alpha_a
    if (a.proc * b.early < b.proc * a.early) return false;
  }
  // Tardy side (positions pinned+1..n-1): nondecreasing P/beta.
  for (std::int32_t k = std::max<std::int32_t>(pinned + 1, 0); k + 1 < n;
       ++k) {
    const Job& a = instance.job(static_cast<std::size_t>(seq[k]));
    const Job& b = instance.job(static_cast<std::size_t>(seq[k + 1]));
    // P_a/beta_a <= P_b/beta_b  <=>  P_a*beta_b <= P_b*beta_a
    if (a.proc * b.tardy > b.proc * a.tardy) return false;
  }
  return true;
}

bool IsVShaped(const Instance& instance, std::span<const JobId> seq) {
  const auto detail = CddEvaluator(instance).EvaluateDetailed(seq);
  return IsVShaped(instance, seq, detail.pinned);
}

Sequence VShapeSeed(const Instance& instance) {
  const std::size_t n = instance.size();
  Sequence early;
  Sequence tardy;
  early.reserve(n);
  tardy.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Job& j = instance.job(i);
    (j.early <= j.tardy ? early : tardy).push_back(static_cast<JobId>(i));
  }
  std::sort(early.begin(), early.end(), [&](JobId a, JobId b) {
    const Job& ja = instance.job(static_cast<std::size_t>(a));
    const Job& jb = instance.job(static_cast<std::size_t>(b));
    const Cost lhs = ja.proc * jb.early;
    const Cost rhs = jb.proc * ja.early;
    return lhs != rhs ? lhs > rhs : a < b;
  });
  std::sort(tardy.begin(), tardy.end(), [&](JobId a, JobId b) {
    const Job& ja = instance.job(static_cast<std::size_t>(a));
    const Job& jb = instance.job(static_cast<std::size_t>(b));
    const Cost lhs = ja.proc * jb.tardy;
    const Cost rhs = jb.proc * ja.tardy;
    return lhs != rhs ? lhs < rhs : a < b;
  });
  early.insert(early.end(), tardy.begin(), tardy.end());
  return early;
}

}  // namespace cdd

#include "core/sequence.hpp"

#include <numeric>
#include <stdexcept>

namespace cdd {

Sequence IdentitySequence(std::size_t n) {
  Sequence seq(n);
  std::iota(seq.begin(), seq.end(), JobId{0});
  return seq;
}

bool IsPermutation(std::span<const JobId> seq) {
  std::vector<bool> seen(seq.size(), false);
  for (const JobId id : seq) {
    if (id < 0 || static_cast<std::size_t>(id) >= seq.size() || seen[id]) {
      return false;
    }
    seen[id] = true;
  }
  return true;
}

void ValidateSequence(std::span<const JobId> seq, std::size_t n) {
  if (seq.size() != n) {
    throw std::invalid_argument("sequence length does not match instance");
  }
  if (!IsPermutation(seq)) {
    throw std::invalid_argument("sequence is not a permutation of the jobs");
  }
}

std::size_t HammingDistance(std::span<const JobId> a,
                            std::span<const JobId> b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t dist = std::max(a.size(), b.size()) - n;
  for (std::size_t i = 0; i < n; ++i) {
    dist += (a[i] != b[i]) ? 1 : 0;
  }
  return dist;
}

}  // namespace cdd

#pragma once
/// \file reference_eval.hpp
/// \brief Slow, independent reference evaluators used as correctness oracles.
///
/// The O(n) evaluators of eval_raw.hpp are clever; these are dumb on
/// purpose.  They enumerate every candidate structure the theory allows and
/// take the minimum, sharing no code with the fast path:
///
///  * ReferenceCddCost — Hall et al. [10]: an optimal schedule starts at
///    t = 0 or has some job completing exactly at d.  Try all n+1 candidate
///    offsets, each evaluated from first principles: O(n^2).
///  * ReferenceUcddcpCost — try every candidate due-date position r; for a
///    fixed r the optimal compressions decompose per job (prefix/suffix
///    penalty sums), but here we additionally try *both* compression choices
///    per job via the marginal-cost argument evaluated from first
///    principles: O(n^2).
///
/// The tests cross-check fast == reference on thousands of random instances
/// and reference == simplex-LP on smaller ones.

#include <span>

#include "core/instance.hpp"
#include "core/sequence.hpp"
#include "core/types.hpp"

namespace cdd {

/// O(n^2) oracle for the optimal CDD cost of a fixed sequence.
Cost ReferenceCddCost(const Instance& instance, std::span<const JobId> seq);

/// O(n^2) oracle for the optimal UCDDCP cost of a fixed sequence.
/// Requires an unrestricted instance (d >= sum P_i).
Cost ReferenceUcddcpCost(const Instance& instance,
                         std::span<const JobId> seq);

}  // namespace cdd

#include "core/reference_eval.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cdd {
namespace {

/// Cost of the no-idle schedule of \p seq starting at \p offset, from first
/// principles.
Cost CostAtOffset(const Instance& instance, std::span<const JobId> seq,
                  Time offset) {
  const Time d = instance.due_date();
  Cost cost = 0;
  Time c = offset;
  for (const JobId id : seq) {
    const Job& job = instance.job(static_cast<std::size_t>(id));
    c += job.proc;
    cost += job.early * std::max<Time>(0, d - c);
    cost += job.tardy * std::max<Time>(0, c - d);
  }
  return cost;
}

}  // namespace

Cost ReferenceCddCost(const Instance& instance, std::span<const JobId> seq) {
  ValidateSequence(seq, instance.size());
  const Time d = instance.due_date();

  // Candidate offsets: 0, and every offset that puts some completion time
  // exactly at the due date (Hall, Kubiak & Sethi).
  Cost best = CostAtOffset(instance, seq, 0);
  Time prefix = 0;
  for (const JobId id : seq) {
    prefix += instance.job(static_cast<std::size_t>(id)).proc;
    const Time offset = d - prefix;
    if (offset >= 0) {
      best = std::min(best, CostAtOffset(instance, seq, offset));
    }
  }
  return best;
}

Cost ReferenceUcddcpCost(const Instance& instance,
                         std::span<const JobId> seq) {
  ValidateSequence(seq, instance.size());
  if (!instance.is_unrestricted()) {
    throw std::invalid_argument(
        "ReferenceUcddcpCost: requires the unrestricted case");
  }
  const Time d = instance.due_date();
  const auto n = static_cast<std::int32_t>(seq.size());

  // For every candidate pinned position r (job at position r completes at d)
  // decide each job's compression by its exact marginal value and evaluate
  // the resulting schedule from first principles.
  Cost best = kInfiniteCost;
  for (std::int32_t r = 0; r < n; ++r) {
    std::vector<Time> x(seq.size(), 0);

    // Tardy side: one unit of compression of position k > r lowers the
    // tardiness of positions k..n-1 by one unit each.
    Cost suffix_beta = 0;
    for (std::int32_t k = n - 1; k > r; --k) {
      const Job& job = instance.job(static_cast<std::size_t>(seq[k]));
      suffix_beta += job.tardy;
      if (suffix_beta > job.compress) {
        x[static_cast<std::size_t>(k)] = job.proc - job.min_proc;
      }
    }
    // Early side: one unit of compression of position k <= r moves every
    // strictly earlier job one unit closer to d.
    Cost prefix_alpha = 0;
    for (std::int32_t k = 0; k <= r; ++k) {
      const Job& job = instance.job(static_cast<std::size_t>(seq[k]));
      if (prefix_alpha > job.compress) {
        x[static_cast<std::size_t>(k)] = job.proc - job.min_proc;
      }
      prefix_alpha += job.early;
    }

    // Evaluate from first principles with position r pinned at d.
    Time sum_before = 0;
    for (std::int32_t k = 0; k <= r; ++k) {
      const Job& job = instance.job(static_cast<std::size_t>(seq[k]));
      sum_before += job.proc - x[static_cast<std::size_t>(k)];
    }
    const Time offset = d - sum_before;
    if (offset < 0) continue;  // cannot happen when unrestricted; guard.

    Cost cost = 0;
    Time c = offset;
    for (std::int32_t k = 0; k < n; ++k) {
      const Job& job = instance.job(static_cast<std::size_t>(seq[k]));
      const Time xi = x[static_cast<std::size_t>(k)];
      c += job.proc - xi;
      cost += job.early * std::max<Time>(0, d - c);
      cost += job.tardy * std::max<Time>(0, c - d);
      cost += job.compress * xi;
    }
    best = std::min(best, cost);
  }

  // Degenerate fall-back (all earliness penalties zero): the uncompressed
  // left-aligned schedule.
  best = std::min(best, CostAtOffset(instance, seq, 0));
  return best;
}

}  // namespace cdd

#pragma once
/// \file pool_allocator.hpp
/// \brief Multi-backend memory allocators for candidate pools.
///
/// Every CandidatePool borrows its storage block from a PoolAllocator
/// instead of owning std::vectors, so the *placement* of the evaluation
/// hot path's working set is a runtime decision made once per process (or
/// per SolverService) rather than a compile-time accident:
///
///   kHost    64-byte-aligned pageable host memory (the default; what the
///            plain std::vector pools of PR 4/5 effectively were).
///   kPinned  page-locked host memory: the allocation is mlock()ed
///            (best-effort; allocation still succeeds when RLIMIT_MEMLOCK
///            denies the lock) and registered with the simulator's
///            pinned-host registry, so the transfer-cost model treats it
///            as DMA-able — device access needs no staging copy.
///   kDevice  simulated device-resident storage: pools live "on the GPU".
///            Kernels (par::detail::LaunchFitness) touch the rows for
///            free; *host* access is what requires a staging copy now.
///   kNuma    NUMA-aware placement: numa_alloc_local() when libnuma is
///            present at build time (CDD_HAVE_NUMA), otherwise aligned
///            host memory whose pages are faulted in by the allocating
///            thread (first-touch — the same local-node placement policy
///            the kernel applies, minus the hard binding).
///
/// Backend selection mirrors the cpu_features idiom of PR 5: the
/// CDD_POOL_BACKEND environment variable ("host" | "pinned" | "device" |
/// "numa") is resolved exactly once per process into ActivePoolBackend();
/// unknown values fall back to kHost.  serve::ServiceConfig::pool_backend
/// overrides the environment per service instance.
///
/// All four backends hand out interchangeable memory: same 64-byte
/// alignment, same stride rules, same contents — so the engine results are
/// bit-identical across backends by construction (the golden manifest
/// replays under every CDD_POOL_BACKEND value; CI pins this).  What
/// changes is the *transfer-cost model* (TransferCost below): which side
/// of a host/device handoff pays a staging copy.
///
/// Thread-safety: allocators returned by PoolAllocatorFor() are
/// process-lifetime singletons whose Allocate/Deallocate are safe to call
/// from any thread.  GlobalPoolStats() counters are relaxed atomics.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cdd::core {

/// Where a candidate pool's storage lives (see the file comment).
enum class PoolBackend : std::uint8_t {
  kHost = 0,  ///< pageable aligned host memory (default)
  kPinned,    ///< page-locked (mlock) host memory, DMA-able
  kDevice,    ///< simulated device-resident memory
  kNuma,      ///< NUMA first-touch local placement
};

/// Stable lower-case name ("host" | "pinned" | "device" | "numa").
std::string_view ToString(PoolBackend backend);

/// Parses a backend name; returns false (and leaves \p out untouched) on
/// anything else.
bool ParsePoolBackend(std::string_view name, PoolBackend* out);

/// What a handoff of a pool with a given backend costs.  "Staging" means
/// an explicit bounce copy must be modeled (and metered as an H2D/D2H
/// event) before the accessing side can read or write the rows; a false
/// flag is the zero-copy case.
struct PoolTransferCost {
  /// Host (CPU engine) access requires a staging copy — true only for
  /// device-resident pools.
  bool host_staging = false;
  /// Device (simulated kernel) access requires an H2D staging copy —
  /// true for pageable host memory (kHost, kNuma); false for kPinned
  /// (DMA-able page-locked memory) and kDevice (already resident).
  bool device_staging = false;
};

/// The transfer-cost model, keyed by backend.
PoolTransferCost TransferCost(PoolBackend backend);

/// Process-wide allocator telemetry (relaxed atomics; monotonic).
struct PoolAllocStats {
  std::atomic<std::uint64_t> allocations{0};  ///< successful Allocate calls
  std::atomic<std::uint64_t> bytes{0};        ///< total bytes handed out
  std::atomic<std::uint64_t> failures{0};     ///< Allocate calls that returned nullptr
  /// CandidatePool constructions that fell back to the host backend after
  /// their requested allocator failed (see CandidatePool's fallback rule).
  std::atomic<std::uint64_t> fallbacks{0};
  /// Pinned allocations where mlock() was denied (allocation succeeded,
  /// pages are not actually locked; the backend tag is kept).
  std::atomic<std::uint64_t> pinned_degraded{0};
};

PoolAllocStats& GlobalPoolStats();

/// Abstract pool memory source.  Implementations must be thread-safe and
/// must return either a block of at least \p bytes aligned to
/// \p alignment, or nullptr (never throw) — callers decide the fallback
/// policy.  \p alignment must be a power of two.
class PoolAllocator {
 public:
  virtual ~PoolAllocator() = default;

  /// Returns nullptr on failure (never throws).
  virtual void* Allocate(std::size_t bytes, std::size_t alignment) = 0;

  /// \p bytes must equal the matching Allocate request.
  virtual void Deallocate(void* ptr, std::size_t bytes) = 0;

  virtual PoolBackend backend() const = 0;

  std::string_view name() const { return ToString(backend()); }
};

/// The process-lifetime singleton allocator for \p backend.
PoolAllocator& PoolAllocatorFor(PoolBackend backend);

/// The backend every defaulted CandidatePool uses, resolved once per
/// process: CDD_POOL_BACKEND when set to a known name, else kHost.
PoolBackend ActivePoolBackend();

/// Shorthand for PoolAllocatorFor(ActivePoolBackend()).
PoolAllocator& ActivePoolAllocator();

/// True when \p ptr lies inside a live pinned-host (kPinned) allocation —
/// the simulator's "cudaHostRegister" ledger.  The transfer paths use
/// this to decide whether host memory is DMA-able without a bounce copy.
bool IsPinnedHost(const void* ptr);

/// Bytes currently allocated by the simulated device-resident backend
/// (the "GPU global memory" footprint of kDevice pools).
std::size_t DeviceResidentBytes();

/// True when this binary was built against libnuma (kNuma allocates with
/// numa_alloc_local); false means kNuma uses the first-touch fallback.
bool NumaAvailable();

}  // namespace cdd::core

#pragma once
/// \file exact.hpp
/// \brief Exact solvers for small instances — ground truth for the tests.
///
/// Two independent exact methods:
///  * BruteForce* — enumerate all n! sequences (n <= 10 guarded), evaluate
///    each with the O(n^2) reference oracle.  Slow and unarguable.
///  * ExactVShapeCdd — for *unrestricted* CDD instances, enumerate the 2^n
///    early/tardy assignments; within each side the optimal order is the
///    classic ratio order (early: nonincreasing P/alpha; tardy:
///    nondecreasing P/beta), so only subsets need enumeration.  Handles
///    n <= ~20 and independently confirms the brute force.

#include <optional>
#include <span>

#include "core/instance.hpp"
#include "core/sequence.hpp"
#include "core/types.hpp"

namespace cdd {

/// An exact optimum: best sequence and its cost.
struct ExactResult {
  Sequence sequence;
  Cost cost = kInfiniteCost;
};

/// Exhaustive search over all sequences for the CDD problem.
/// Throws std::invalid_argument for n > 10 (10! evaluations).
ExactResult BruteForceCdd(const Instance& instance);

/// Exhaustive search over all sequences for the UCDDCP problem
/// (unrestricted instances only).  Throws for n > 10.
ExactResult BruteForceUcddcp(const Instance& instance);

/// Exact solver for unrestricted CDD via V-shape subset enumeration.
/// Throws std::invalid_argument when the instance is restricted or n > 24.
ExactResult ExactVShapeCdd(const Instance& instance);

}  // namespace cdd

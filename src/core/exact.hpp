#pragma once
/// \file exact.hpp
/// \brief Exact solvers for small instances — ground truth for the tests.
///
/// Two independent exact methods:
///  * BruteForce* — enumerate all n! sequences (n <= 10 guarded), evaluate
///    each with the O(n^2) reference oracle.  Slow and unarguable.
///  * ExactVShapeCdd — for *unrestricted* CDD instances, enumerate the 2^n
///    early/tardy assignments; within each side the optimal order is the
///    classic ratio order (early: nonincreasing P/alpha; tardy:
///    nondecreasing P/beta), so only subsets need enumeration.  Handles
///    n <= ~20 and independently confirms the brute force.

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>

#include "core/instance.hpp"
#include "core/sequence.hpp"
#include "core/types.hpp"

namespace cdd {

/// Thrown by every exact-tier solver when an instance exceeds the solver's
/// size guard.  Derives from std::invalid_argument so existing callers keep
/// working; the message always names the solver, the offending n and the
/// limit ("BruteForceCdd: n=12 exceeds the exact-tier limit 10").
class ExactLimitError : public std::invalid_argument {
 public:
  ExactLimitError(std::string_view solver, std::size_t n, std::size_t limit);

  std::size_t n() const noexcept { return n_; }
  std::size_t limit() const noexcept { return limit_; }

 private:
  std::size_t n_ = 0;
  std::size_t limit_ = 0;
};

/// An exact optimum: best sequence and its cost.
struct ExactResult {
  Sequence sequence;
  Cost cost = kInfiniteCost;
};

/// Exhaustive search over all sequences for the CDD problem.
/// Throws ExactLimitError for n > 10 (10! evaluations).
ExactResult BruteForceCdd(const Instance& instance);

/// Exhaustive search over all sequences for the UCDDCP problem
/// (unrestricted instances only).  Throws ExactLimitError for n > 10.
ExactResult BruteForceUcddcp(const Instance& instance);

/// Exact solver for unrestricted CDD via V-shape subset enumeration.
/// Throws std::invalid_argument when the instance is restricted and
/// ExactLimitError when n > 24.
ExactResult ExactVShapeCdd(const Instance& instance);

}  // namespace cdd

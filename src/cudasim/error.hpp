#pragma once
/// \file error.hpp
/// \brief Error type of the GPU-simulator runtime.

#include <stdexcept>
#include <string>

namespace cdd::sim {

/// Thrown for the conditions a real CUDA runtime reports through
/// cudaGetLastError (invalid launch configuration, out-of-bounds shared
/// memory request) and for the conditions that are undefined behaviour on a
/// real device but detectable here (barrier divergence, syncthreads in a
/// non-cooperative launch).
class GpuError : public std::runtime_error {
 public:
  explicit GpuError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace cdd::sim

#include "cudasim/device_props.hpp"

#include <algorithm>

namespace cdd::sim {

std::uint32_t DeviceProperties::ResidentBlocksPerSm(
    std::uint32_t threads_per_block) const {
  if (threads_per_block == 0) return 0;
  const std::uint32_t by_threads = max_threads_per_sm / threads_per_block;
  return std::max<std::uint32_t>(1u,
                                 std::min(by_threads, max_blocks_per_sm));
}

DeviceProperties GeForceGT560M() {
  DeviceProperties p;
  p.name = "GeForce GT 560M (simulated)";
  p.sm_count = 4;
  p.cores_per_sm = 48;  // 192 CUDA cores total
  p.warp_size = 32;
  p.max_threads_per_block = 1024;
  p.max_threads_per_sm = 1536;
  p.max_blocks_per_sm = 8;
  p.shared_mem_per_block = 48 * 1024;
  p.global_mem = 2ull * 1024 * 1024 * 1024;  // "2 GB graphics card memory"
  p.clock_hz = 1.55e9;
  p.h2d_bandwidth = 6.0e9;
  p.d2h_bandwidth = 6.0e9;
  return p;
}

DeviceProperties GenericKepler() {
  DeviceProperties p;
  p.name = "Generic Kepler-class (simulated)";
  p.sm_count = 8;
  p.cores_per_sm = 192;
  p.warp_size = 32;
  p.max_threads_per_block = 1024;
  p.max_threads_per_sm = 2048;
  p.max_blocks_per_sm = 16;
  p.clock_hz = 1.0e9;
  p.h2d_bandwidth = 12.0e9;
  p.d2h_bandwidth = 12.0e9;
  return p;
}

DeviceProperties TinyDevice() {
  DeviceProperties p;
  p.name = "Tiny test device";
  p.sm_count = 1;
  p.cores_per_sm = 32;
  p.warp_size = 32;
  p.max_threads_per_block = 256;
  p.max_threads_per_sm = 256;
  p.max_blocks_per_sm = 1;
  p.shared_mem_per_block = 16 * 1024;
  p.clock_hz = 1.0e9;
  return p;
}

}  // namespace cdd::sim

#pragma once
/// \file timing_model.hpp
/// \brief Analytic performance model of a simulated kernel launch.
///
/// The model reproduces the effects the paper reasons about in Section VIII:
///  * blocks are scheduled in *waves* over the SMs, so pushing the ensemble
///    size past (SMs x resident blocks) serializes block processing;
///  * per-thread work (the O(n) evaluators) scales time linearly in n and in
///    the number of generations (Figure 11);
///  * host<->device copies pay a latency plus a bandwidth term, which is why
///    the paper keeps data resident on the device between kernels (Fig 9).
///
/// It is a *model*: times are reported as simulated device seconds, never as
/// host wall-clock.  See DESIGN.md §2 for why this substitution preserves
/// the paper's claims.

#include <cstddef>
#include <cstdint>

#include "cudasim/device_props.hpp"
#include "cudasim/dim3.hpp"

namespace cdd::sim {

/// Work observed during one launch, fed to the model by the Device.
struct LaunchCharge {
  Dim3 grid;
  Dim3 block;
  std::uint64_t total_work_units = 0;  ///< sum over threads of charge()
  std::uint64_t max_thread_work = 0;   ///< critical path of one thread
  std::size_t shared_bytes = 0;
};

/// Stateless evaluator of the analytic model.
class TimingModel {
 public:
  explicit TimingModel(const DeviceProperties& props) : props_(props) {}

  /// Simulated seconds for one kernel launch.
  double KernelSeconds(const LaunchCharge& charge) const;

  /// Simulated seconds for one host<->device copy of \p bytes.
  double TransferSeconds(std::size_t bytes, bool host_to_device) const;

  /// Number of scheduling waves of the launch (exposed for tests and the
  /// block-size ablation).
  std::uint64_t Waves(Dim3 grid, Dim3 block) const;

 private:
  DeviceProperties props_;
};

}  // namespace cdd::sim

#include "cudasim/timing_model.hpp"

#include <algorithm>
#include <cmath>

namespace cdd::sim {

std::uint64_t TimingModel::Waves(Dim3 grid, Dim3 block) const {
  const std::uint64_t blocks = grid.count();
  const std::uint32_t resident = props_.ResidentBlocksPerSm(
      static_cast<std::uint32_t>(block.count()));
  const std::uint64_t per_wave =
      static_cast<std::uint64_t>(props_.sm_count) * std::max(resident, 1u);
  return (blocks + per_wave - 1) / per_wave;
}

double TimingModel::KernelSeconds(const LaunchCharge& charge) const {
  const std::uint64_t blocks = charge.grid.count();
  const std::uint64_t tpb = charge.block.count();
  if (blocks == 0 || tpb == 0 || charge.total_work_units == 0) {
    return props_.launch_overhead_s;
  }

  // Blocks are scheduled in waves: each SM hosts up to `resident` blocks at
  // a time, so a launch of B blocks runs as full waves of
  // sm_count * resident blocks followed by one partial wave.  Within a
  // wave, every SM time-shares its `cores_per_sm` lanes among the lane-ops
  // of its resident threads; a thread's lane-ops are its charged work units
  // (padded to whole warps — lanes in the padding of the last warp of a
  // block are dead weight).  A wave can never finish faster than its
  // critical-path thread (latency bound).
  const std::uint32_t resident =
      props_.ResidentBlocksPerSm(static_cast<std::uint32_t>(tpb));
  const std::uint64_t per_wave =
      static_cast<std::uint64_t>(props_.sm_count) * std::max(resident, 1u);

  const double avg_work = static_cast<double>(charge.total_work_units) /
                          (static_cast<double>(blocks) *
                           static_cast<double>(tpb));
  const std::uint64_t warps =
      (tpb + props_.warp_size - 1) / props_.warp_size;
  const double padded_tpb =
      static_cast<double>(warps) * props_.warp_size;
  const double thread_cycles = avg_work * props_.cycles_per_work_unit;
  const double latency_s =
      static_cast<double>(charge.max_thread_work) *
      props_.cycles_per_work_unit / props_.clock_hz;

  const auto wave_seconds = [&](std::uint64_t blocks_per_sm) {
    const double busy = static_cast<double>(blocks_per_sm) * padded_tpb *
                        thread_cycles /
                        (static_cast<double>(props_.cores_per_sm) *
                         props_.clock_hz);
    return std::max(busy, latency_s);
  };

  const std::uint64_t full_waves = blocks / per_wave;
  const std::uint64_t rem = blocks % per_wave;
  double seconds =
      static_cast<double>(full_waves) * wave_seconds(resident);
  if (rem > 0) {
    const std::uint64_t sm_used =
        std::min<std::uint64_t>(props_.sm_count, rem);
    seconds += wave_seconds((rem + sm_used - 1) / sm_used);
  }
  return props_.launch_overhead_s + seconds;
}

double TimingModel::TransferSeconds(std::size_t bytes,
                                    bool host_to_device) const {
  const double bw =
      host_to_device ? props_.h2d_bandwidth : props_.d2h_bandwidth;
  return props_.transfer_latency_s + static_cast<double>(bytes) / bw;
}

}  // namespace cdd::sim

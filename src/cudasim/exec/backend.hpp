#pragma once
/// \file backend.hpp
/// \brief Execution-backend selection for the simulated device.
///
/// The simulator separates *what* a launch computes from *when* the model
/// says it finished.  Block execution is the "what": every block of a
/// kernel launch is independent (the same contract CUDA gives blocks), so
/// the runtime is free to run them on one host core or on all of them.
/// The TimingModel is the "when": a virtual clock fed only by per-thread
/// charge() aggregates, which are exact integers reduced in block-index
/// order — so modeled kernel/sync/H2D/D2H times, trace timestamps and the
/// golden manifest are bit-identical no matter which backend executed the
/// blocks.
///
///   kSerial        blocks run in block-index order on the calling host
///                  thread (the default: deterministic, zero overhead,
///                  right for single-core hosts and for debugging).
///   kHostParallel  blocks are scheduled over the process-wide persistent
///                  worker pool (exec::HostThreadPool) — one fiber bundle
///                  per block, chunked round-robin over block indices.
///                  This is the paper's actual execution mode: 768 chains
///                  spread across every available core.
///
/// Backend selection mirrors the cpu_features / pool_allocator idiom: the
/// CDD_EXEC_BACKEND environment variable ("serial" | "host-parallel") is
/// resolved exactly once per process into ActiveExecBackend(); unknown
/// values fall back to kSerial.  serve::ServiceConfig::exec_backend and
/// the --exec-backend CLI flags override the environment per service /
/// per device (Device::set_exec_backend), and Device::set_worker_threads
/// remains the per-device hard override the tests use.

#include <cstdint>
#include <string_view>

namespace cdd::sim::exec {

/// How a Device executes the blocks of one launch (see the file comment).
enum class ExecBackend : std::uint8_t {
  kSerial = 0,    ///< all blocks on the calling thread, in order (default)
  kHostParallel,  ///< blocks fan out over the persistent host worker pool
};

/// Stable lower-case name ("serial" | "host-parallel").
std::string_view ToString(ExecBackend backend);

/// Parses a backend name; returns false (and leaves \p out untouched) on
/// anything else.
bool ParseExecBackend(std::string_view name, ExecBackend* out);

/// The backend every defaulted Device uses, resolved once per process:
/// CDD_EXEC_BACKEND when set to a known name, else kSerial.
ExecBackend ActiveExecBackend();

/// Worker cap for host-parallel execution, resolved once per process:
/// CDD_EXEC_WORKERS when set to a positive integer, else the hardware
/// concurrency (minimum 1).  This bounds the persistent pool's thread
/// count *and* the per-launch participation of a defaulted Device.
unsigned ActiveExecWorkers();

}  // namespace cdd::sim::exec

#include "cudasim/exec/host_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/tracer.hpp"

namespace cdd::sim::exec {

namespace {

/// One published ParallelFor call.  Lives on the caller's stack; the
/// caller removes it from the active list before returning, so workers
/// never hold a pointer past the call.
struct LaunchJob {
  std::size_t blocks = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  /// Next block index to claim (chunked round-robin, chunk = 1: block
  /// bodies are orders of magnitude heavier than one fetch_add).
  std::atomic<std::size_t> next{0};
  /// Threads currently inside RunChunks (the caller plus every pool
  /// worker that acquired a slot).  The launch is complete only when this
  /// reaches zero: a participant leaves only after `next` is exhausted
  /// AND all of its own blocks finished, so zero participants means every
  /// block ran and nobody holds a pointer into this stack frame anymore.
  std::atomic<int> participants{1};
  /// Pool workers still allowed to join (the participation cap minus the
  /// caller).  Decremented once per joining worker, never returned: the
  /// cap bounds total participants, which bounds concurrency.
  std::atomic<int> open_slots{0};
  std::atomic<bool> failed{false};

  std::mutex error_mutex;
  std::size_t first_error_block = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_error;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool completed = false;
};

/// Claims indices from \p job until exhausted.
void RunChunks(LaunchJob& job) {
  CDD_TRACE_SPAN("exec.worker");
  for (;;) {
    const std::size_t b = job.next.fetch_add(1, std::memory_order_relaxed);
    if (b >= job.blocks) return;
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.fn)(b);
      } catch (...) {
        const std::scoped_lock lock(job.error_mutex);
        // Keep the failure with the lowest block index so the rethrown
        // exception is independent of worker timing.
        if (b < job.first_error_block) {
          job.first_error_block = b;
          job.first_error = std::current_exception();
        }
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
  }
}

/// Retires one participant.  The last one out signals the caller —
/// holding done_mutex across the notify so the condition_variable cannot
/// be destroyed mid-call — and the acq_rel RMW chain on `participants`
/// makes every participant's block writes visible to the caller.  After
/// the mutex is released here, this thread never touches \p job again;
/// only then can the caller's wait return and the frame be destroyed.
void Leave(LaunchJob& job) {
  if (job.participants.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::scoped_lock lock(job.done_mutex);
    job.completed = true;
    job.done_cv.notify_all();
  }
}

}  // namespace

struct HostThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::thread> threads;
  std::vector<LaunchJob*> active;
  bool stop = false;

  /// Grows the pool to \p target threads (mutex held by caller).
  void EnsureWorkersLocked(unsigned target) {
    while (threads.size() < target) {
      const unsigned id = static_cast<unsigned>(threads.size());
      threads.emplace_back([this, id] { WorkerLoop(id); });
    }
  }

  LaunchJob* TryAcquireLocked() {
    for (LaunchJob* job : active) {
      // The exhaustion check is the lifetime guard: `next` only grows, a
      // participant leaves only after observing exhaustion, and the
      // caller destroys the job only after every participant left.  So
      // while a job still has unclaimed blocks (checked here, under the
      // registry mutex, before the caller could have erased it) joining
      // it keeps participants > 0 and the frame alive.
      if (job->next.load(std::memory_order_relaxed) >= job->blocks) {
        continue;  // exhausted, caller is about to remove it
      }
      int slots = job->open_slots.load(std::memory_order_relaxed);
      while (slots > 0) {
        if (job->open_slots.compare_exchange_weak(
                slots, slots - 1, std::memory_order_relaxed)) {
          job->participants.fetch_add(1, std::memory_order_relaxed);
          return job;
        }
      }
    }
    return nullptr;
  }

  void WorkerLoop(unsigned id) {
    // Label this thread's event ring so exports distinguish the pool's
    // wall-clock tracks from the modeled-time "sim-device" track.
    trace::SetThreadLabel("exec-worker-" + std::to_string(id));
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      if (stop) return;
      if (LaunchJob* job = TryAcquireLocked()) {
        lock.unlock();
        RunChunks(*job);
        Leave(*job);
        lock.lock();
        continue;
      }
      cv.wait(lock);
    }
  }
};

HostThreadPool& HostThreadPool::Instance() {
  static HostThreadPool pool;
  return pool;
}

HostThreadPool::HostThreadPool() : impl_(new Impl()) {}

HostThreadPool::~HostThreadPool() {
  {
    const std::scoped_lock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& thread : impl_->threads) thread.join();
  delete impl_;
}

unsigned HostThreadPool::workers() const {
  const std::scoped_lock lock(impl_->mutex);
  return static_cast<unsigned>(impl_->threads.size());
}

void HostThreadPool::ParallelFor(
    std::size_t blocks, unsigned max_workers,
    const std::function<void(std::size_t)>& fn) {
  if (blocks == 0) return;
  if (blocks < 2 || max_workers < 2) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
    return;
  }

  LaunchJob job;
  job.blocks = blocks;
  job.fn = &fn;
  // The caller is one participant; never more slots than useful blocks.
  const std::size_t extra = std::min<std::size_t>(max_workers - 1,
                                                  blocks - 1);
  job.open_slots.store(static_cast<int>(extra),
                       std::memory_order_relaxed);
  {
    const std::scoped_lock lock(impl_->mutex);
    // The pool grows to the largest cap ever requested (explicit
    // set_worker_threads calls may exceed the hardware default) and
    // keeps those threads for every later launch.
    impl_->EnsureWorkersLocked(static_cast<unsigned>(extra));
    impl_->active.push_back(&job);
  }
  impl_->cv.notify_all();

  RunChunks(job);  // the caller always participates
  Leave(job);

  {
    std::unique_lock<std::mutex> lock(job.done_mutex);
    job.done_cv.wait(lock, [&job] { return job.completed; });
  }
  {
    const std::scoped_lock lock(impl_->mutex);
    std::erase(impl_->active, &job);
  }
  if (job.first_error) std::rethrow_exception(job.first_error);
}

}  // namespace cdd::sim::exec

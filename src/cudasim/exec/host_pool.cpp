#include "cudasim/exec/host_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "trace/tracer.hpp"

namespace cdd::sim::exec {

namespace {

/// How block indices are handed to participants.  CDD_EXEC_CHUNK picks
/// the policy per launch; the choice only moves block bodies between
/// host threads, so kernel results and modeled time are unaffected.
///
///   * kDynamic (default, and any unknown value): one shared cursor,
///     chunk = 1 — block bodies are orders of magnitude heavier than one
///     fetch_add, and a single hot cacheline is fine at pool scale.
///   * kStatic ("static"): pre-partitioned contiguous ranges claimed
///     whole — no per-block atomics at all, but a participant stuck with
///     a skewed range finishes alone.
///   * kSteal ("steal"): contiguous per-participant ranges, owner claims
///     from the front one block at a time; a participant whose range
///     runs dry steals the back half of the richest remaining range into
///     its own slot.  This is the fallback for skewed block costs: the
///     long tail of an expensive range keeps getting split instead of
///     serializing on its original owner.
enum class ChunkMode { kDynamic, kStatic, kSteal };

ChunkMode ChunkModeFromEnv() {
  const char* value = std::getenv("CDD_EXEC_CHUNK");
  if (value == nullptr) return ChunkMode::kDynamic;
  const std::string_view mode(value);
  if (mode == "static") return ChunkMode::kStatic;
  if (mode == "steal") return ChunkMode::kSteal;
  return ChunkMode::kDynamic;
}

/// A contiguous [begin, end) block range packed begin<<32|end, so that
/// claiming one index off the front and stealing a half off the back are
/// both single-word compare-exchanges against the same cell.
constexpr std::uint64_t PackRange(std::uint64_t begin, std::uint64_t end) {
  return (begin << 32) | end;
}
constexpr std::uint64_t RangeBegin(std::uint64_t range) {
  return range >> 32;
}
constexpr std::uint64_t RangeEnd(std::uint64_t range) {
  return range & 0xffffffffull;
}

/// One published ParallelFor call.  Lives on the caller's stack; the
/// caller removes it from the active list before returning, so workers
/// never hold a pointer past the call.
struct LaunchJob {
  std::size_t blocks = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  ChunkMode mode = ChunkMode::kDynamic;

  /// Next block index to claim (kDynamic).
  std::atomic<std::size_t> next{0};

  /// Shared per-ticket ranges (kStatic / kSteal): one contiguous slice
  /// of [0, blocks) per potential participant.  next_ticket assigns each
  /// participant its home slot.
  std::unique_ptr<std::atomic<std::uint64_t>[]> ranges;
  std::size_t range_count = 0;
  std::atomic<int> next_ticket{0};

  /// True while unclaimed blocks remain.  This is the join guard the
  /// pool checks before a worker attaches: in every mode it can only go
  /// false after the point at which the last participant to claim work
  /// is still attached, so observing true under the registry mutex means
  /// the frame is alive (see TryAcquireLocked).
  bool HasWork() const {
    if (mode == ChunkMode::kDynamic) {
      return next.load(std::memory_order_relaxed) < blocks;
    }
    for (std::size_t t = 0; t < range_count; ++t) {
      const std::uint64_t range = ranges[t].load(std::memory_order_relaxed);
      if (RangeBegin(range) < RangeEnd(range)) return true;
    }
    return false;
  }
  /// Threads currently inside RunChunks (the caller plus every pool
  /// worker that acquired a slot).  The launch is complete only when this
  /// reaches zero: a participant leaves only after `next` is exhausted
  /// AND all of its own blocks finished, so zero participants means every
  /// block ran and nobody holds a pointer into this stack frame anymore.
  std::atomic<int> participants{1};
  /// Pool workers still allowed to join (the participation cap minus the
  /// caller).  Decremented once per joining worker, never returned: the
  /// cap bounds total participants, which bounds concurrency.
  std::atomic<int> open_slots{0};
  std::atomic<bool> failed{false};

  std::mutex error_mutex;
  std::size_t first_error_block = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_error;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool completed = false;
};

/// Runs one claimed block index, with the shared failure protocol.
void RunOne(LaunchJob& job, std::size_t b) {
  if (job.failed.load(std::memory_order_relaxed)) return;
  try {
    (*job.fn)(b);
  } catch (...) {
    const std::scoped_lock lock(job.error_mutex);
    // Keep the failure with the lowest block index so the rethrown
    // exception is independent of worker timing.
    if (b < job.first_error_block) {
      job.first_error_block = b;
      job.first_error = std::current_exception();
    }
    job.failed.store(true, std::memory_order_relaxed);
  }
}

/// Pops the front index of \p range; false once it is empty.
bool ClaimFront(std::atomic<std::uint64_t>& range, std::size_t* b) {
  std::uint64_t cur = range.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t begin = RangeBegin(cur);
    const std::uint64_t end = RangeEnd(cur);
    if (begin >= end) return false;
    if (range.compare_exchange_weak(cur, PackRange(begin + 1, end),
                                    std::memory_order_relaxed)) {
      *b = static_cast<std::size_t>(begin);
      return true;
    }
  }
}

/// Moves the back half of the richest shared range into slot \p own.
/// False only when a full scan found every range empty — the steal-mode
/// termination condition.
bool StealHalf(LaunchJob& job, std::size_t own) {
  for (;;) {
    std::size_t victim = own;
    std::uint64_t victim_range = 0;
    std::uint64_t best_remaining = 0;
    for (std::size_t t = 0; t < job.range_count; ++t) {
      if (t == own) continue;
      const std::uint64_t range = job.ranges[t].load(std::memory_order_relaxed);
      const std::uint64_t remaining = RangeEnd(range) - RangeBegin(range);
      if (RangeBegin(range) < RangeEnd(range) && remaining > best_remaining) {
        best_remaining = remaining;
        victim = t;
        victim_range = range;
      }
    }
    if (best_remaining == 0) return false;
    const std::uint64_t end = RangeEnd(victim_range);
    const std::uint64_t take = (best_remaining + 1) / 2;
    std::uint64_t expected = victim_range;
    if (job.ranges[victim].compare_exchange_strong(
            expected, PackRange(RangeBegin(victim_range), end - take),
            std::memory_order_relaxed)) {
      // The stolen half lands in the thief's own (empty) slot, so it
      // stays visible to further thieves — a skewed tail keeps getting
      // split instead of serializing on whoever stole it first.
      job.ranges[own].store(PackRange(end - take, end),
                            std::memory_order_relaxed);
      return true;
    }
    // Lost the race against the victim's owner or another thief; rescan.
  }
}

/// Claims indices from \p job until exhausted (mode-dispatched).
void RunChunks(LaunchJob& job) {
  CDD_TRACE_SPAN("exec.worker");
  switch (job.mode) {
    case ChunkMode::kDynamic:
      for (;;) {
        const std::size_t b =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (b >= job.blocks) return;
        RunOne(job, b);
      }
    case ChunkMode::kStatic:
      for (;;) {
        const int ticket =
            job.next_ticket.fetch_add(1, std::memory_order_relaxed);
        if (static_cast<std::size_t>(ticket) >= job.range_count) return;
        // Claim the whole slice up front (the empty range marks it
        // taken); no per-block atomics after this exchange.
        const std::uint64_t range =
            job.ranges[ticket].exchange(PackRange(0, 0),
                                        std::memory_order_relaxed);
        for (std::uint64_t b = RangeBegin(range); b < RangeEnd(range); ++b) {
          RunOne(job, static_cast<std::size_t>(b));
        }
      }
    case ChunkMode::kSteal: {
      // Every participant has a home slot (range_count equals the
      // participation cap, so tickets never run out).
      const std::size_t own = static_cast<std::size_t>(
          job.next_ticket.fetch_add(1, std::memory_order_relaxed));
      for (;;) {
        std::size_t b = 0;
        if (ClaimFront(job.ranges[own], &b)) {
          RunOne(job, b);
          continue;
        }
        if (!StealHalf(job, own)) return;
      }
    }
  }
}

/// Retires one participant.  The last one out signals the caller —
/// holding done_mutex across the notify so the condition_variable cannot
/// be destroyed mid-call — and the acq_rel RMW chain on `participants`
/// makes every participant's block writes visible to the caller.  After
/// the mutex is released here, this thread never touches \p job again;
/// only then can the caller's wait return and the frame be destroyed.
void Leave(LaunchJob& job) {
  if (job.participants.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::scoped_lock lock(job.done_mutex);
    job.completed = true;
    job.done_cv.notify_all();
  }
}

}  // namespace

struct HostThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::thread> threads;
  std::vector<LaunchJob*> active;
  bool stop = false;

  /// Grows the pool to \p target threads (mutex held by caller).
  void EnsureWorkersLocked(unsigned target) {
    while (threads.size() < target) {
      const unsigned id = static_cast<unsigned>(threads.size());
      threads.emplace_back([this, id] { WorkerLoop(id); });
    }
  }

  LaunchJob* TryAcquireLocked() {
    for (LaunchJob* job : active) {
      // The exhaustion check is the lifetime guard: claim cursors only
      // advance, a participant leaves only after observing exhaustion,
      // and the caller destroys the job only after every participant
      // left.  So while a job still has unclaimed blocks (checked here,
      // under the registry mutex, before the caller could have erased
      // it) joining it keeps participants > 0 and the frame alive.
      if (!job->HasWork()) {
        continue;  // exhausted, caller is about to remove it
      }
      int slots = job->open_slots.load(std::memory_order_relaxed);
      while (slots > 0) {
        if (job->open_slots.compare_exchange_weak(
                slots, slots - 1, std::memory_order_relaxed)) {
          job->participants.fetch_add(1, std::memory_order_relaxed);
          return job;
        }
      }
    }
    return nullptr;
  }

  void WorkerLoop(unsigned id) {
    // Label this thread's event ring so exports distinguish the pool's
    // wall-clock tracks from the modeled-time "sim-device" track.
    trace::SetThreadLabel("exec-worker-" + std::to_string(id));
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      if (stop) return;
      if (LaunchJob* job = TryAcquireLocked()) {
        lock.unlock();
        RunChunks(*job);
        Leave(*job);
        lock.lock();
        continue;
      }
      cv.wait(lock);
    }
  }
};

HostThreadPool& HostThreadPool::Instance() {
  static HostThreadPool pool;
  return pool;
}

HostThreadPool::HostThreadPool() : impl_(new Impl()) {}

HostThreadPool::~HostThreadPool() {
  {
    const std::scoped_lock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& thread : impl_->threads) thread.join();
  delete impl_;
}

unsigned HostThreadPool::workers() const {
  const std::scoped_lock lock(impl_->mutex);
  return static_cast<unsigned>(impl_->threads.size());
}

void HostThreadPool::ParallelFor(
    std::size_t blocks, unsigned max_workers,
    const std::function<void(std::size_t)>& fn) {
  if (blocks == 0) return;
  if (blocks < 2 || max_workers < 2) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
    return;
  }

  LaunchJob job;
  job.blocks = blocks;
  job.fn = &fn;
  // The caller is one participant; never more slots than useful blocks.
  const std::size_t extra = std::min<std::size_t>(max_workers - 1,
                                                  blocks - 1);
  job.open_slots.store(static_cast<int>(extra),
                       std::memory_order_relaxed);
  // Range bookkeeping packs block indices into 32 bits; absurdly large
  // launches just keep the default policy.
  job.mode = blocks < (std::uint64_t{1} << 32) ? ChunkModeFromEnv()
                                               : ChunkMode::kDynamic;
  if (job.mode != ChunkMode::kDynamic) {
    // One contiguous slice per potential participant (caller + extra);
    // extra <= blocks - 1 guarantees every slice is non-empty.
    job.range_count = extra + 1;
    job.ranges.reset(new std::atomic<std::uint64_t>[job.range_count]);
    for (std::size_t t = 0; t < job.range_count; ++t) {
      job.ranges[t].store(
          PackRange(t * blocks / job.range_count,
                    (t + 1) * blocks / job.range_count),
          std::memory_order_relaxed);
    }
  }
  {
    const std::scoped_lock lock(impl_->mutex);
    // The pool grows to the largest cap ever requested (explicit
    // set_worker_threads calls may exceed the hardware default) and
    // keeps those threads for every later launch.
    impl_->EnsureWorkersLocked(static_cast<unsigned>(extra));
    impl_->active.push_back(&job);
  }
  impl_->cv.notify_all();

  RunChunks(job);  // the caller always participates
  Leave(job);

  {
    std::unique_lock<std::mutex> lock(job.done_mutex);
    job.done_cv.wait(lock, [&job] { return job.completed; });
  }
  {
    const std::scoped_lock lock(impl_->mutex);
    std::erase(impl_->active, &job);
  }
  if (job.first_error) std::rethrow_exception(job.first_error);
}

}  // namespace cdd::sim::exec

#pragma once
/// \file host_pool.hpp
/// \brief The persistent host worker pool behind kHostParallel execution.
///
/// One pool per process, shared by every Device: worker threads are
/// started lazily on first use and live until exit, so the steady state
/// of a 768-chain engine (four launches per generation, thousands of
/// generations) never creates or joins a thread.  Sharing one pool is
/// also the oversubscription guard for the serve layer — any number of
/// concurrent devices (one per in-flight request) draw from the same
/// bounded set of worker threads instead of each spawning its own.
///
/// Scheduling defaults to chunked round-robin over block indices:
/// callers publish a launch with an atomic next-block cursor, workers
/// (and the calling thread itself, which always participates so progress
/// never depends on pool availability) claim indices with fetch_add
/// until the launch is exhausted.  `CDD_EXEC_CHUNK` switches the claim
/// policy per launch — `static` pre-partitions contiguous ranges with no
/// per-block atomics, `steal` adds work-stealing on top (a participant
/// whose range runs dry splits off the back half of the richest
/// remaining range) for skewed block costs; any other value keeps the
/// default.  The policy only moves block bodies between host threads:
/// results and modeled time are identical across all three.  Per-launch
/// participation is capped (Device worker-thread settings), and multiple
/// launches may be in flight concurrently — a worker that finds one
/// launch saturated moves to the next.
///
/// Determinism contract: ParallelFor promises only that fn(b) runs
/// exactly once for every b in [0, blocks) — in unspecified order, on
/// unspecified threads.  Callers that need ordered aggregation (the
/// Device's charge reduction) collect per-index results and reduce in
/// index order afterwards.  On failure the first error *by lowest block
/// index* is rethrown and remaining blocks are skipped, so the surfaced
/// exception does not depend on thread timing.

#include <cstddef>
#include <functional>

namespace cdd::sim::exec {

class HostThreadPool {
 public:
  /// The process-lifetime pool.  Threads start on first ParallelFor that
  /// needs them and are joined at static destruction.
  static HostThreadPool& Instance();

  /// Runs fn(b) exactly once for every b in [0, blocks), using at most
  /// \p max_workers concurrent threads (the caller counts as one; values
  /// < 2 or blocks < 2 degrade to an inline serial loop).  Blocks until
  /// every index has run.  Rethrows the failing fn's exception with the
  /// lowest block index; once any index fails, indices not yet started
  /// are skipped.
  void ParallelFor(std::size_t blocks, unsigned max_workers,
                   const std::function<void(std::size_t)>& fn);

  /// Worker threads currently alive (grows on demand, never shrinks).
  unsigned workers() const;

 private:
  HostThreadPool();
  ~HostThreadPool();
  HostThreadPool(const HostThreadPool&) = delete;
  HostThreadPool& operator=(const HostThreadPool&) = delete;

  struct Impl;
  Impl* impl_;  // raw: destroyed in ~HostThreadPool after joining workers
};

}  // namespace cdd::sim::exec

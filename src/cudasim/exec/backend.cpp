#include "cudasim/exec/backend.hpp"

#include <cstdlib>
#include <thread>

namespace cdd::sim::exec {

namespace {

ExecBackend Resolve() {
  if (const char* env = std::getenv("CDD_EXEC_BACKEND")) {
    ExecBackend parsed = ExecBackend::kSerial;
    if (ParseExecBackend(env, &parsed)) return parsed;
    // Unknown value: fall through to the default.  Execution placement
    // never changes results, so degrading silently is safe — the run is
    // merely slower, never wrong.
  }
  return ExecBackend::kSerial;
}

unsigned ResolveWorkers() {
  if (const char* env = std::getenv("CDD_EXEC_WORKERS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<unsigned>(value);
    // Zero, negative or garbage: fall through to the hardware count.
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1u : hardware;
}

}  // namespace

std::string_view ToString(ExecBackend backend) {
  return backend == ExecBackend::kHostParallel ? "host-parallel" : "serial";
}

bool ParseExecBackend(std::string_view name, ExecBackend* out) {
  if (name == "serial") {
    *out = ExecBackend::kSerial;
    return true;
  }
  if (name == "host-parallel") {
    *out = ExecBackend::kHostParallel;
    return true;
  }
  return false;
}

ExecBackend ActiveExecBackend() {
  static const ExecBackend backend = Resolve();
  return backend;
}

unsigned ActiveExecWorkers() {
  static const unsigned workers = ResolveWorkers();
  return workers;
}

}  // namespace cdd::sim::exec

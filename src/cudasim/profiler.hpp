#pragma once
/// \file profiler.hpp
/// \brief Per-kernel and per-transfer accounting, in the spirit of the
/// NVIDIA profiler the authors used to tune their kernels (Section I).

#include <cstdint>
#include <map>
#include <string>

namespace cdd::sim {

/// Aggregate statistics of one kernel (keyed by launch name).
struct KernelRecord {
  std::uint64_t launches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t threads = 0;
  std::uint64_t work_units = 0;   ///< sum of ThreadCtx::charge() amounts
  double sim_time_s = 0.0;        ///< modeled device time
};

/// Aggregate statistics of one transfer direction.
struct TransferRecord {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double sim_time_s = 0.0;
};

/// Collects what the device did; queried by tests and printed by benches.
class Profiler {
 public:
  void RecordKernel(const std::string& name, std::uint64_t blocks,
                    std::uint64_t threads, std::uint64_t work_units,
                    double sim_time_s);
  void RecordTransfer(bool host_to_device, std::uint64_t bytes,
                      double sim_time_s);

  const KernelRecord* Find(const std::string& name) const;
  const std::map<std::string, KernelRecord>& kernels() const {
    return kernels_;
  }
  const TransferRecord& h2d() const { return h2d_; }
  const TransferRecord& d2h() const { return d2h_; }

  void Reset();

  /// Multi-line human-readable report (kernel table + transfer summary).
  std::string Report() const;

 private:
  std::map<std::string, KernelRecord> kernels_;
  TransferRecord h2d_;
  TransferRecord d2h_;
};

}  // namespace cdd::sim

#pragma once
/// \file device.hpp
/// \brief The simulated GPU: kernel launches, thread contexts, time ledger.
///
/// Usage mirrors CUDA host code:
///
///   sim::Device gpu(sim::GeForceGT560M());
///   sim::DeviceBuffer<int> data(gpu, 1024);            // cudaMalloc
///   data.CopyFromHost(host_span);                      // cudaMemcpy H2D
///   gpu.Launch({4}, {192}, opts, [&](sim::ThreadCtx& t) {  // kernel<<<4,192>>>
///     auto* smem = t.shared_as<int>();
///     ...
///     t.syncthreads();
///     t.charge(n);                                     // timing model input
///   });
///   gpu.Synchronize();                                 // cudaDeviceSynchronize
///   data.CopyToHost(host_span);                        // cudaMemcpy D2H
///
/// Execution is functionally synchronous and deterministic; the *time* a
/// launch would have taken on the configured device is produced by the
/// analytic TimingModel and accumulated in sim_time_s().

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cudasim/device_props.hpp"
#include "cudasim/dim3.hpp"
#include "cudasim/error.hpp"
#include "cudasim/exec/backend.hpp"
#include "cudasim/fiber.hpp"
#include "cudasim/profiler.hpp"
#include "cudasim/timing_model.hpp"

namespace cdd::sim {

class Device;
class Stream;

/// Per-simulated-thread view handed to the kernel body.
class ThreadCtx {
 public:
  Dim3 thread_idx;  ///< threadIdx
  Dim3 block_idx;   ///< blockIdx
  Dim3 block_dim;   ///< blockDim
  Dim3 grid_dim;    ///< gridDim

  /// Linear thread index within the block (x fastest).
  std::uint32_t linear_thread() const {
    return static_cast<std::uint32_t>(
        block_dim.linear(thread_idx.x, thread_idx.y, thread_idx.z));
  }
  /// Linear block index within the grid.
  std::size_t linear_block() const {
    return grid_dim.linear(block_idx.x, block_idx.y, block_idx.z);
  }
  /// Grid-global linear thread id (the paper's per-chain index).
  std::uint64_t global_thread() const {
    return static_cast<std::uint64_t>(linear_block()) * block_dim.count() +
           linear_thread();
  }

  /// Block-wide barrier (__syncthreads).  Only valid in cooperative
  /// launches; throws GpuError otherwise (a real GPU would hang or corrupt).
  void syncthreads();

  /// Start of this block's shared memory (zero-initialized per block; note
  /// that real CUDA leaves shared memory uninitialized).
  std::byte* shared() const { return shared_; }
  std::size_t shared_bytes() const { return shared_bytes_; }
  template <typename T>
  T* shared_as() const {
    return reinterpret_cast<T*>(shared_);
  }

  /// Reports \p units of abstract per-thread work to the timing model
  /// (roughly: inner-loop iterations executed, memory served from global
  /// memory / L2 — the baseline cost).
  void charge(std::uint64_t units) { work_ += units; }

  /// Work units whose memory traffic hits block shared memory (cheaper;
  /// see DeviceProperties::shared_cost_factor).
  void charge_shared(std::uint64_t units) {
    work_ += Scaled(units, props_->shared_cost_factor);
  }
  /// Work units served by the read-only texture path's spatial cache.
  void charge_texture(std::uint64_t units) {
    work_ += Scaled(units, props_->texture_cost_factor);
  }
  /// Work units served by the constant cache's broadcast.
  void charge_constant(std::uint64_t units) {
    work_ += Scaled(units, props_->constant_cost_factor);
  }

  std::uint64_t charged() const { return work_; }

 private:
  friend class Device;
  friend struct ThreadCtxAccess;  // runtime-internal initialization

  static std::uint64_t Scaled(std::uint64_t units, double factor) {
    return static_cast<std::uint64_t>(static_cast<double>(units) * factor +
                                      0.5);
  }

  Fiber* fiber_ = nullptr;  // null in non-cooperative launches
  std::byte* shared_ = nullptr;
  std::size_t shared_bytes_ = 0;
  std::uint64_t work_ = 0;
  const DeviceProperties* props_ = nullptr;
};

/// Kernel body: invoked once per simulated thread.
using KernelFn = std::function<void(ThreadCtx&)>;

/// Per-launch options (the <<<grid, block, smem>>> extras).
struct LaunchOptions {
  std::string name = "kernel";   ///< profiler key
  std::size_t shared_bytes = 0;  ///< dynamic shared memory per block
  /// Cooperative launches run block threads as fibers and support
  /// syncthreads(); non-cooperative launches run threads as a plain loop
  /// (faster) and forbid barriers.
  bool cooperative = false;
  std::size_t fiber_stack_bytes = 64 * 1024;
};

/// A simulated GPU device.
///
/// Thread-compatibility: a Device may be driven from one host thread at a
/// time (like a CUDA context).  Internally it may fan blocks out over a
/// host worker pool; simulated-thread code must only touch per-thread data,
/// shared memory (within its block) and global memory via atomics.hpp —
/// the same rules CUDA imposes.
class Device {
 public:
  explicit Device(DeviceProperties props = GeForceGT560M());
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceProperties& properties() const { return props_; }

  /// Launches \p kernel on a grid x block geometry.  Throws GpuError for
  /// configurations the device cannot run.
  void Launch(Dim3 grid, Dim3 block, const LaunchOptions& opts,
              const KernelFn& kernel);

  /// Convenience overload with default options.
  void Launch(Dim3 grid, Dim3 block, const KernelFn& kernel) {
    Launch(grid, block, LaunchOptions{}, kernel);
  }

  /// Launches \p kernel on \p stream: execution is immediate (and
  /// identical to Launch), but the modeled time accrues to the stream's
  /// timeline, overlapping other streams and the default timeline.  The
  /// kernel starts at max(stream.ready_at, current device clock).
  void LaunchAsync(Stream& stream, Dim3 grid, Dim3 block,
                   const LaunchOptions& opts, const KernelFn& kernel);

  /// cudaDeviceSynchronize.  Execution is already synchronous; this is the
  /// fence the paper calls out after the four kernel launches (Section VI-D)
  /// and it charges the model's synchronization overhead.  When streams
  /// are live, the device clock additionally advances past every stream's
  /// ready_at (the overlap point of the stream model).
  void Synchronize();

  /// Accumulated simulated device-side seconds (kernels + transfers).
  double sim_time_s() const { return sim_time_s_; }
  /// Resets the simulated clock (not the profiler).
  void ResetClock() { sim_time_s_ = 0.0; }

  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  const TimingModel& timing_model() const { return model_; }

  /// Execution backend for this device's launches (see exec/backend.hpp).
  /// Defaults to the process-wide CDD_EXEC_BACKEND resolution; the serve
  /// layer and the CLIs override it per device.  Never changes results or
  /// modeled times — only which host threads run the blocks.
  void set_exec_backend(exec::ExecBackend backend) {
    exec_backend_ = backend;
  }
  exec::ExecBackend exec_backend() const { return exec_backend_; }

  /// Hard per-device override of the block-execution worker cap (>=1).
  /// 1 forces serial execution regardless of backend; >1 forces
  /// host-parallel execution with that participation cap (what the race
  /// tests use).  Unset, the cap derives from the backend: 1 for kSerial,
  /// exec::ActiveExecWorkers() for kHostParallel.
  void set_worker_threads(unsigned workers);
  /// The effective worker cap launches run with (>=1).
  unsigned worker_threads() const;

  /// Validates a launch configuration without launching (used by the
  /// launch-config helper and the tests).
  void ValidateLaunch(Dim3 grid, Dim3 block,
                      std::size_t shared_bytes) const;

  // --- hooks for DeviceBuffer / ConstantBuffer ---------------------------
  void RegisterAlloc(std::size_t bytes, bool constant);
  void ReleaseAlloc(std::size_t bytes, bool constant) noexcept;
  void RecordH2D(std::size_t bytes);
  void RecordD2H(std::size_t bytes);
  std::size_t allocated_bytes() const { return allocated_; }

 private:
  friend class Stream;

  /// Executes all blocks and returns the modeled kernel seconds (shared by
  /// Launch and LaunchAsync).
  double ExecuteLaunch(Dim3 grid, Dim3 block, const LaunchOptions& opts,
                       const KernelFn& kernel);

  void RunBlocksSequential(Dim3 grid, Dim3 block, const LaunchOptions& opts,
                           const KernelFn& kernel, std::uint64_t& total_work,
                           std::uint64_t& max_work);
  void RunBlocksParallel(Dim3 grid, Dim3 block, const LaunchOptions& opts,
                         const KernelFn& kernel, unsigned cap,
                         std::uint64_t& total_work,
                         std::uint64_t& max_work);

  DeviceProperties props_;
  TimingModel model_;
  Profiler profiler_;
  double sim_time_s_ = 0.0;
  exec::ExecBackend exec_backend_ = exec::ActiveExecBackend();
  unsigned workers_ = 0;  ///< 0 = derive the cap from exec_backend_
  std::size_t allocated_ = 0;
  std::size_t constant_allocated_ = 0;
  FiberPool pool_;  // reused by sequential launches
  std::vector<Stream*> streams_;  // live streams (non-owning)
};

}  // namespace cdd::sim

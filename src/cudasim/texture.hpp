#pragma once
/// \file texture.hpp
/// \brief Read-only texture references — the paper's "future work":
/// "examine the utilization of the texture memory of the GPU to make use
/// of its spatial cache" (Section IX).
///
/// A TextureRef binds a DeviceBuffer for read-only access through the
/// texture path.  Functionally the data is identical; the *cost* differs:
/// kernels account texture-served work with ThreadCtx::charge_texture(),
/// which applies DeviceProperties::texture_cost_factor — cheaper than
/// global memory (spatial cache) but not as cheap as explicitly staged
/// shared memory.  bench_ablation_texture quantifies the three options on
/// the fitness kernel.

#include "cudasim/error.hpp"
#include "cudasim/memory.hpp"

namespace cdd::sim {

/// Read-only view of a DeviceBuffer through the texture path.
///
/// The referenced buffer must outlive the TextureRef (as a CUDA texture
/// object must not outlive its backing allocation).
template <typename T>
class TextureRef {
 public:
  explicit TextureRef(const DeviceBuffer<T>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}

  /// tex1Dfetch-style element access (bounds-checked: a real device would
  /// clamp or return garbage; the simulator fails loudly).
  const T& Fetch(std::size_t i) const {
    if (i >= size_) {
      throw GpuError("TextureRef: fetch out of bounds");
    }
    return data_[i];
  }

  /// Raw pointer for bulk loops; pair reads with charge_texture().
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  const T* data_;
  std::size_t size_;
};

}  // namespace cdd::sim

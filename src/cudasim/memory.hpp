#pragma once
/// \file memory.hpp
/// \brief Device memory: global buffers and constant-memory symbols.
///
/// DeviceBuffer<T> is the simulator's cudaMalloc + cudaMemcpy: allocation is
/// charged against the device's global memory, every explicit copy is
/// metered by the timing model and shows up in the profiler — this is how
/// the benches account for the "back-and-forth" transfers of Figure 9.
/// Kernels receive raw pointers via data(), exactly as CUDA kernels do.
///
/// ConstantBuffer<T> models __constant__ symbols: small, host-writable,
/// kernel-readable, charged against the 64 KiB constant bank.  The paper
/// stores the due date d and the job count n there (Section VI).

#include <cstring>
#include <span>
#include <vector>

#include "cudasim/device.hpp"
#include "cudasim/error.hpp"

namespace cdd::sim {

/// RAII global-memory allocation of \p T elements on a Device.
template <typename T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "device memory holds trivially copyable data only");

 public:
  DeviceBuffer(Device& device, std::size_t count)
      : device_(&device), storage_(count) {
    device_->RegisterAlloc(bytes(), /*constant=*/false);
  }

  ~DeviceBuffer() {
    if (device_ != nullptr) {
      device_->ReleaseAlloc(bytes(), /*constant=*/false);
    }
  }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : device_(other.device_), storage_(std::move(other.storage_)) {
    other.device_ = nullptr;
  }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      if (device_ != nullptr) device_->ReleaseAlloc(bytes(), false);
      device_ = other.device_;
      storage_ = std::move(other.storage_);
      other.device_ = nullptr;
    }
    return *this;
  }

  std::size_t size() const { return storage_.size(); }
  std::size_t bytes() const { return storage_.size() * sizeof(T); }

  /// cudaMemcpyHostToDevice.  Throws GpuError on size mismatch.
  void CopyFromHost(std::span<const T> host) {
    if (host.size() != storage_.size()) {
      throw GpuError("CopyFromHost: size mismatch");
    }
    std::memcpy(storage_.data(), host.data(), bytes());
    device_->RecordH2D(bytes());
  }

  /// Partial H2D copy of \p host into the buffer starting at \p offset.
  void CopyFromHost(std::span<const T> host, std::size_t offset) {
    if (offset + host.size() > storage_.size()) {
      throw GpuError("CopyFromHost: range out of bounds");
    }
    std::memcpy(storage_.data() + offset, host.data(),
                host.size() * sizeof(T));
    device_->RecordH2D(host.size() * sizeof(T));
  }

  /// cudaMemcpyDeviceToHost.  Throws GpuError on size mismatch.
  void CopyToHost(std::span<T> host) const {
    if (host.size() != storage_.size()) {
      throw GpuError("CopyToHost: size mismatch");
    }
    std::memcpy(host.data(), storage_.data(), bytes());
    device_->RecordD2H(bytes());
  }

  /// Partial D2H copy from the buffer starting at \p offset.
  void CopyToHost(std::span<T> host, std::size_t offset) const {
    if (offset + host.size() > storage_.size()) {
      throw GpuError("CopyToHost: range out of bounds");
    }
    std::memcpy(host.data(), storage_.data() + offset,
                host.size() * sizeof(T));
    device_->RecordD2H(host.size() * sizeof(T));
  }

  /// cudaMemset-style fill (no transfer cost; device-side operation).
  void Fill(const T& value) {
    std::fill(storage_.begin(), storage_.end(), value);
  }

  /// Device pointer, for kernels.
  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }

 private:
  Device* device_;
  std::vector<T> storage_;
};

/// RAII constant-memory symbol holding \p T elements.
template <typename T>
class ConstantBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  ConstantBuffer(Device& device, std::size_t count)
      : device_(&device), storage_(count) {
    device_->RegisterAlloc(storage_.size() * sizeof(T), /*constant=*/true);
  }
  ~ConstantBuffer() {
    if (device_ != nullptr) {
      device_->ReleaseAlloc(storage_.size() * sizeof(T), /*constant=*/true);
    }
  }
  ConstantBuffer(const ConstantBuffer&) = delete;
  ConstantBuffer& operator=(const ConstantBuffer&) = delete;

  /// cudaMemcpyToSymbol.
  void CopyFromHost(std::span<const T> host) {
    if (host.size() != storage_.size()) {
      throw GpuError("CopyFromHost(constant): size mismatch");
    }
    std::memcpy(storage_.data(), host.data(), host.size() * sizeof(T));
    device_->RecordH2D(host.size() * sizeof(T));
  }

  /// Scalar convenience for single-element symbols.
  void Set(const T& value) { CopyFromHost(std::span<const T>(&value, 1)); }

  std::size_t size() const { return storage_.size(); }
  const T* data() const { return storage_.data(); }
  const T& value() const { return storage_[0]; }

 private:
  Device* device_;
  std::vector<T> storage_;
};

/// CUDA-event-style timestamps on the simulated clock.
class Event {
 public:
  /// cudaEventRecord: captures the device's simulated time.
  void Record(const Device& device) { time_s_ = device.sim_time_s(); }
  double time_s() const { return time_s_; }

  /// cudaEventElapsedTime (milliseconds between two recorded events).
  static double ElapsedMs(const Event& start, const Event& stop) {
    return (stop.time_s_ - start.time_s_) * 1e3;
  }

 private:
  double time_s_ = 0.0;
};

}  // namespace cdd::sim

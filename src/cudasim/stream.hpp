#pragma once
/// \file stream.hpp
/// \brief CUDA-stream analogue: independent device timelines that overlap.
///
/// The paper's pipeline uses the default stream (all four kernels are
/// serialized, Section VI-D); streams extend the runtime so independent
/// work — e.g. solving several benchmark instances on one device — can
/// overlap in modeled time, exactly like cudaStream_t:
///
///   sim::Stream s1(gpu), s2(gpu);
///   gpu.LaunchAsync(s1, grid, block, opts, kernelA);  // both issued "now"
///   gpu.LaunchAsync(s2, grid, block, opts, kernelB);
///   gpu.Synchronize();   // device clock advances by max(A, B), not A+B
///
/// Execution remains functionally immediate and deterministic; only the
/// time accounting differs.  A kernel on stream S starts at
/// max(S.ready_at, device clock at issue) and S.ready_at moves past it.

#include <cstddef>

namespace cdd::sim {

class Device;

/// An asynchronous device timeline.  Must not outlive its Device.
class Stream {
 public:
  explicit Stream(Device& device);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Simulated time at which all work queued on this stream has finished.
  double ready_at() const { return ready_at_; }

  /// cudaStreamSynchronize: the host (device default timeline) waits for
  /// this stream only.
  void Synchronize();

 private:
  friend class Device;
  Device* device_;
  double ready_at_ = 0.0;
};

}  // namespace cdd::sim

#include "cudasim/fiber.hpp"

#include <ucontext.h>

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <utility>

namespace cdd::sim {

struct Fiber::Impl {
  ucontext_t ctx{};
  ucontext_t caller{};
  std::vector<char> stack;
  std::function<void()> body;
  std::exception_ptr error;
  bool finished = true;
};

namespace {

/// makecontext only passes ints; split a pointer across two of them.
void Trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* impl = reinterpret_cast<Fiber::Impl*>(bits);
  try {
    impl->body();
  } catch (...) {
    impl->error = std::current_exception();
  }
  impl->finished = true;
  // Returning transfers to ctx.uc_link == &impl->caller.
}

}  // namespace

Fiber::Fiber(std::size_t stack_bytes) : impl_(std::make_unique<Impl>()) {
  impl_->stack.resize(stack_bytes < 16 * 1024 ? 16 * 1024 : stack_bytes);
}

Fiber::~Fiber() = default;
Fiber::Fiber(Fiber&&) noexcept = default;
Fiber& Fiber::operator=(Fiber&&) noexcept = default;

void Fiber::Reset(std::function<void()> body) {
  if (!done_) {
    throw std::logic_error("Fiber::Reset while fiber is still running");
  }
  impl_->body = std::move(body);
  impl_->error = nullptr;
  impl_->finished = false;
  done_ = false;

  if (getcontext(&impl_->ctx) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  impl_->ctx.uc_stack.ss_sp = impl_->stack.data();
  impl_->ctx.uc_stack.ss_size = impl_->stack.size();
  impl_->ctx.uc_link = &impl_->caller;
  const auto bits = reinterpret_cast<std::uintptr_t>(impl_.get());
  makecontext(&impl_->ctx, reinterpret_cast<void (*)()>(&Trampoline), 2,
              static_cast<unsigned>(bits >> 32),
              static_cast<unsigned>(bits & 0xffffffffu));
}

bool Fiber::Resume() {
  if (done_) {
    throw std::logic_error("Fiber::Resume on a finished fiber");
  }
  if (swapcontext(&impl_->caller, &impl_->ctx) != 0) {
    throw std::runtime_error("Fiber: swapcontext failed");
  }
  done_ = impl_->finished;
  return !done_;
}

void Fiber::Yield() {
  if (swapcontext(&impl_->ctx, &impl_->caller) != 0) {
    throw std::runtime_error("Fiber: swapcontext failed (yield)");
  }
}

void Fiber::RethrowIfFailed() {
  if (impl_->error) {
    std::exception_ptr err = impl_->error;
    impl_->error = nullptr;
    std::rethrow_exception(err);
  }
}

std::vector<Fiber>& FiberPool::Acquire(std::size_t count) {
  while (fibers_.size() < count) {
    fibers_.emplace_back(stack_bytes_);
  }
  return fibers_;
}

}  // namespace cdd::sim

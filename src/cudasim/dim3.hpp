#pragma once
/// \file dim3.hpp
/// \brief CUDA-style three-dimensional launch geometry.

#include <cstddef>
#include <cstdint>
#include <string>

namespace cdd::sim {

/// Mirror of CUDA's dim3: grid and block extents in (x, y, z).
/// The paper uses linear configurations G = (ceil(N/N_B), 1, 1) and
/// B = (N_B, 1, 1) (Section VI); the runtime supports all three dimensions.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(std::uint32_t x_, std::uint32_t y_ = 1, std::uint32_t z_ = 1)
      : x(x_), y(y_), z(z_) {}

  /// Total number of cells (threads in a block / blocks in a grid).
  constexpr std::size_t count() const {
    return static_cast<std::size_t>(x) * y * z;
  }

  /// Linearized index of a cell (x fastest, CUDA convention).
  constexpr std::size_t linear(std::uint32_t cx, std::uint32_t cy,
                               std::uint32_t cz) const {
    return (static_cast<std::size_t>(cz) * y + cy) * x + cx;
  }

  friend constexpr bool operator==(const Dim3&, const Dim3&) = default;
};

inline std::string ToString(const Dim3& d) {
  return "(" + std::to_string(d.x) + "," + std::to_string(d.y) + "," +
         std::to_string(d.z) + ")";
}

}  // namespace cdd::sim

#pragma once
/// \file fiber.hpp
/// \brief Stackful fibers — the execution vehicle for simulated GPU threads.
///
/// A thread block with `__syncthreads()` needs every one of its threads to
/// be suspendable at the barrier.  OS threads would be far too heavy (the
/// paper's configuration alone is 4 blocks x 192 threads); instead each
/// simulated thread is a ucontext fiber that the BlockRunner schedules
/// cooperatively on one host thread.  Fibers are pooled and reused across
/// blocks, so steady-state execution performs no allocation.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace cdd::sim {

/// A reusable stackful coroutine.
///
/// Lifecycle: Reset(fn) arms the fiber with a body; Resume() runs it until
/// it calls Yield() or the body returns; done() reports completion.
/// Resume()/Yield() must be paired on the same host thread for any single
/// resume, but a Fiber may be resumed from different host threads over its
/// lifetime (no thread-local state survives a yield).
class Fiber {
 public:
  /// \param stack_bytes size of the private stack (rounded up to page-ish
  /// granularity).  64 KiB comfortably fits the O(n) evaluators, which are
  /// iterative and allocation-free.
  explicit Fiber(std::size_t stack_bytes = 64 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  Fiber(Fiber&&) noexcept;
  Fiber& operator=(Fiber&&) noexcept;

  /// Arms the fiber with a new body.  Must not be running.
  void Reset(std::function<void()> body);

  /// Runs the fiber until Yield() or completion.  Returns true while the
  /// body has more work (yielded), false once it returned.
  bool Resume();

  /// Suspends the currently running fiber (call from inside the body only).
  void Yield();

  bool done() const { return done_; }

  /// Rethrows an exception that escaped the fiber body, if any.
  void RethrowIfFailed();

  struct Impl;  // public so the ucontext trampoline can reach it

 private:
  std::unique_ptr<Impl> impl_;
  bool done_ = true;
};

/// Grow-only pool of fibers, one per simulated thread slot of a block.
class FiberPool {
 public:
  explicit FiberPool(std::size_t stack_bytes = 64 * 1024)
      : stack_bytes_(stack_bytes) {}

  /// Ensures at least \p count fibers exist and returns the backing vector.
  std::vector<Fiber>& Acquire(std::size_t count);

  /// Destroys all fibers.  Used after an exception escaped a kernel body:
  /// sibling fibers of the failing block are still suspended and cannot be
  /// re-armed, so their stacks are dropped wholesale (objects live on those
  /// stacks are not destructed — same caveat as any stackful-coroutine
  /// abandonment).
  void Clear() { fibers_.clear(); }

 private:
  std::size_t stack_bytes_;
  std::vector<Fiber> fibers_;
};

}  // namespace cdd::sim

#pragma once
/// \file atomics.hpp
/// \brief Device atomics — the simulator's counterparts of atomicMin / \n
/// atomicAdd / atomicCAS / atomicExch.
///
/// Simulated threads of different blocks may run on different host threads,
/// so "device global memory" accessed by atomics must really be atomic on
/// the host.  std::atomic_ref lets plain buffer elements be operated on
/// atomically without changing their storage type, exactly matching CUDA's
/// model where any global word can be the target of an atomic.

#include <atomic>
#include <concepts>
#include <cstdint>

namespace cdd::sim {

/// atomicAdd: returns the previous value.
template <typename T>
  requires std::integral<T>
inline T AtomicAdd(T* address, T value) {
  return std::atomic_ref<T>(*address).fetch_add(value,
                                                std::memory_order_relaxed);
}

/// atomicMin: returns the previous value.  CAS loop because std::atomic_ref
/// has no fetch_min until C++26.
template <typename T>
  requires std::integral<T>
inline T AtomicMin(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  T observed = ref.load(std::memory_order_relaxed);
  while (value < observed &&
         !ref.compare_exchange_weak(observed, value,
                                    std::memory_order_relaxed)) {
  }
  return observed;
}

/// atomicMax: returns the previous value.
template <typename T>
  requires std::integral<T>
inline T AtomicMax(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  T observed = ref.load(std::memory_order_relaxed);
  while (value > observed &&
         !ref.compare_exchange_weak(observed, value,
                                    std::memory_order_relaxed)) {
  }
  return observed;
}

/// atomicExch: returns the previous value.
template <typename T>
  requires std::integral<T>
inline T AtomicExch(T* address, T value) {
  return std::atomic_ref<T>(*address).exchange(value,
                                               std::memory_order_relaxed);
}

/// atomicCAS: returns the previous value (CUDA semantics: the word is set
/// to \p value only if it equals \p compare).
template <typename T>
  requires std::integral<T>
inline T AtomicCas(T* address, T compare, T value) {
  std::atomic_ref<T> ref(*address);
  T expected = compare;
  ref.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  return expected;
}

}  // namespace cdd::sim

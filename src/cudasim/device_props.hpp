#pragma once
/// \file device_props.hpp
/// \brief Static description of a simulated GPU, with presets.
///
/// The properties feed two consumers: launch-configuration validation
/// (max threads per block, shared memory limits) and the analytic timing
/// model (SMs, cores, clock, transfer bandwidth) described in DESIGN.md §5.5.

#include <cstdint>
#include <string>

namespace cdd::sim {

/// Capability and performance description of a simulated device.
struct DeviceProperties {
  std::string name = "Simulated GPU";

  // --- capability limits (validated at launch time) -----------------------
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t max_block_dim_x = 1024;
  std::uint32_t max_block_dim_y = 1024;
  std::uint32_t max_block_dim_z = 64;
  std::uint32_t max_grid_dim_x = 65535;
  std::size_t shared_mem_per_block = 48 * 1024;  ///< bytes
  std::size_t constant_mem = 64 * 1024;          ///< bytes
  std::size_t global_mem = 2ull * 1024 * 1024 * 1024;  ///< bytes

  // --- occupancy model ----------------------------------------------------
  std::uint32_t sm_count = 4;
  std::uint32_t cores_per_sm = 48;  ///< scalar lanes ("CUDA cores") per SM
  std::uint32_t warp_size = 32;
  std::uint32_t max_threads_per_sm = 1536;
  std::uint32_t max_blocks_per_sm = 8;
  std::uint32_t registers_per_sm = 32768;

  // --- timing model -------------------------------------------------------
  double clock_hz = 1.55e9;           ///< shader clock
  double h2d_bandwidth = 6.0e9;       ///< bytes/s (PCIe 2.0 x16 effective)
  double d2h_bandwidth = 6.0e9;       ///< bytes/s
  double transfer_latency_s = 10e-6;  ///< fixed per-copy cost
  double launch_overhead_s = 5e-6;    ///< fixed per-kernel-launch cost
  /// Shader cycles consumed by one abstract work unit charged via
  /// ThreadCtx::charge().  Kernels charge roughly one unit per executed
  /// inner-loop step (an int64 compare/add plus a memory access plus
  /// branching — tens to hundreds of effective cycles on a Fermi/Kepler
  /// part once divergence and memory stalls are included).  The default is
  /// calibrated against the paper's one GPU runtime anchor: SA with 5000
  /// generations, 768 chains and n = 1000 jobs takes 17.26 s on the
  /// GT 560M (Section VIII-A), which this preset reproduces to within a
  /// few percent.  See EXPERIMENTS.md "Calibration".
  double cycles_per_work_unit = 312.0;

  /// Relative cost of a work unit whose memory traffic is served by the
  /// other on-chip paths (global memory through L2 is the 1.0 baseline
  /// folded into cycles_per_work_unit).  Shared memory has the lowest
  /// latency (Section VI-A's motivation for staging the penalties);
  /// the read-only texture path with its spatial cache sits in between —
  /// the paper's "future work" hypothesis, quantified by
  /// bench_ablation_texture; the constant cache broadcasts scalars.
  double shared_cost_factor = 0.55;
  double texture_cost_factor = 0.72;
  double constant_cost_factor = 0.50;

  /// Maximum number of thread blocks resident on one SM for a launch with
  /// \p threads_per_block threads.
  std::uint32_t ResidentBlocksPerSm(std::uint32_t threads_per_block) const;
};

/// The paper's device: GeForce GT 560M, 192 CUDA cores in 4 SMs,
/// 2 GB device memory (Section VIII).
DeviceProperties GeForceGT560M();

/// A generic larger Kepler-class device, for what-if sweeps.
DeviceProperties GenericKepler();

/// A single-SM toy device: every block is a wave, which makes the wave
/// arithmetic of the timing model directly observable in tests.
DeviceProperties TinyDevice();

}  // namespace cdd::sim

#include "cudasim/profiler.hpp"

#include <iomanip>
#include <sstream>

namespace cdd::sim {

void Profiler::RecordKernel(const std::string& name, std::uint64_t blocks,
                            std::uint64_t threads, std::uint64_t work_units,
                            double sim_time_s) {
  KernelRecord& r = kernels_[name];
  r.launches += 1;
  r.blocks += blocks;
  r.threads += threads;
  r.work_units += work_units;
  r.sim_time_s += sim_time_s;
}

void Profiler::RecordTransfer(bool host_to_device, std::uint64_t bytes,
                              double sim_time_s) {
  TransferRecord& r = host_to_device ? h2d_ : d2h_;
  r.count += 1;
  r.bytes += bytes;
  r.sim_time_s += sim_time_s;
}

const KernelRecord* Profiler::Find(const std::string& name) const {
  const auto it = kernels_.find(name);
  return it == kernels_.end() ? nullptr : &it->second;
}

void Profiler::Reset() {
  kernels_.clear();
  h2d_ = {};
  d2h_ = {};
}

std::string Profiler::Report() const {
  std::ostringstream os;
  os << std::left << std::setw(24) << "kernel" << std::right << std::setw(10)
     << "launches" << std::setw(12) << "blocks" << std::setw(14) << "threads"
     << std::setw(16) << "work units" << std::setw(12) << "time [ms]"
     << "\n";
  for (const auto& [name, r] : kernels_) {
    os << std::left << std::setw(24) << name << std::right << std::setw(10)
       << r.launches << std::setw(12) << r.blocks << std::setw(14)
       << r.threads << std::setw(16) << r.work_units << std::setw(12)
       << std::fixed << std::setprecision(3) << r.sim_time_s * 1e3 << "\n";
  }
  os << "H->D: " << h2d_.count << " copies, " << h2d_.bytes << " bytes, "
     << std::fixed << std::setprecision(3) << h2d_.sim_time_s * 1e3
     << " ms\n";
  os << "D->H: " << d2h_.count << " copies, " << d2h_.bytes << " bytes, "
     << std::fixed << std::setprecision(3) << d2h_.sim_time_s * 1e3
     << " ms\n";
  return os.str();
}

}  // namespace cdd::sim

#include "cudasim/device.hpp"

#include "cudasim/exec/host_pool.hpp"
#include "cudasim/stream.hpp"
#include "trace/tracer.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace cdd::sim {

/// Runtime-internal accessor for ThreadCtx's private launch state.
struct ThreadCtxAccess {
  static void Init(ThreadCtx& ctx, Dim3 tidx, Dim3 bidx, Dim3 bdim,
                   Dim3 gdim, std::byte* shared, std::size_t shared_bytes,
                   const DeviceProperties* props) {
    ctx.thread_idx = tidx;
    ctx.block_idx = bidx;
    ctx.block_dim = bdim;
    ctx.grid_dim = gdim;
    ctx.shared_ = shared;
    ctx.shared_bytes_ = shared_bytes;
    ctx.work_ = 0;
    ctx.fiber_ = nullptr;
    ctx.props_ = props;
  }
  static void SetFiber(ThreadCtx& ctx, Fiber* fiber) { ctx.fiber_ = fiber; }
  static std::uint64_t Work(const ThreadCtx& ctx) { return ctx.work_; }
};

namespace {

/// One shared virtual export track for modeled device time.  Kernel,
/// transfer and sync events carry TimingModel timestamps (not wall
/// clock), so a Perfetto view of this track IS the paper's per-kernel
/// runtime breakdown (Fig. 11/14/16).  Allocated lazily: a process that
/// never enables tracing never registers it.
std::uint32_t SimTrack() {
  static const std::uint32_t track =
      trace::NewTrack("sim-device (modeled time)");
  return track;
}

std::int64_t SimNs(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e9);
}

Dim3 UnlinearizeBlock(Dim3 grid, std::size_t lin) {
  Dim3 idx;
  idx.x = static_cast<std::uint32_t>(lin % grid.x);
  const std::size_t rest = lin / grid.x;
  idx.y = static_cast<std::uint32_t>(rest % grid.y);
  idx.z = static_cast<std::uint32_t>(rest / grid.y);
  return idx;
}

Dim3 UnlinearizeThread(Dim3 block, std::size_t lin) {
  Dim3 idx;
  idx.x = static_cast<std::uint32_t>(lin % block.x);
  const std::size_t rest = lin / block.x;
  idx.y = static_cast<std::uint32_t>(rest % block.y);
  idx.z = static_cast<std::uint32_t>(rest / block.y);
  return idx;
}

/// Per-worker scratch needed to execute blocks.
struct WorkerState {
  FiberPool* pool = nullptr;
  const DeviceProperties* props = nullptr;
  std::vector<ThreadCtx> ctxs;
  std::vector<std::max_align_t> smem;
};

struct BlockResult {
  std::uint64_t total_work = 0;
  std::uint64_t max_work = 0;
};

/// Executes one block and returns its charge aggregates.
BlockResult RunOneBlock(Dim3 grid, Dim3 block, std::size_t linear_block,
                        const LaunchOptions& opts, const KernelFn& kernel,
                        WorkerState& ws) {
  const std::size_t tpb = block.count();
  const Dim3 bidx = UnlinearizeBlock(grid, linear_block);

  // Zeroed dynamic shared memory for this block.
  const std::size_t smem_cells =
      (opts.shared_bytes + sizeof(std::max_align_t) - 1) /
      sizeof(std::max_align_t);
  if (ws.smem.size() < smem_cells) ws.smem.resize(smem_cells);
  if (smem_cells > 0) {
    std::memset(ws.smem.data(), 0, smem_cells * sizeof(std::max_align_t));
  }
  std::byte* smem_ptr = reinterpret_cast<std::byte*>(ws.smem.data());

  if (ws.ctxs.size() < tpb) ws.ctxs.resize(tpb);
  for (std::size_t t = 0; t < tpb; ++t) {
    ThreadCtxAccess::Init(ws.ctxs[t], UnlinearizeThread(block, t), bidx,
                          block, grid, smem_ptr, opts.shared_bytes,
                          ws.props);
  }

  if (opts.cooperative) {
    auto& fibers = ws.pool->Acquire(tpb);
    for (std::size_t t = 0; t < tpb; ++t) {
      ThreadCtx& ctx = ws.ctxs[t];
      ThreadCtxAccess::SetFiber(ctx, &fibers[t]);
      fibers[t].Reset([&kernel, &ctx]() { kernel(ctx); });
    }
    std::size_t finished = 0;
    while (finished < tpb) {
      std::size_t yielded = 0;
      for (std::size_t t = 0; t < tpb; ++t) {
        if (fibers[t].done()) continue;
        if (fibers[t].Resume()) {
          ++yielded;
        } else {
          fibers[t].RethrowIfFailed();
          ++finished;
        }
      }
      if (yielded > 0 && finished > 0) {
        throw GpuError(
            "__syncthreads divergence in block " + ToString(bidx) +
            ": some threads exited while others wait at a barrier");
      }
    }
  } else {
    for (std::size_t t = 0; t < tpb; ++t) {
      kernel(ws.ctxs[t]);
    }
  }

  BlockResult res;
  for (std::size_t t = 0; t < tpb; ++t) {
    const std::uint64_t w = ThreadCtxAccess::Work(ws.ctxs[t]);
    res.total_work += w;
    res.max_work = std::max(res.max_work, w);
  }
  return res;
}

/// The calling thread's persistent block-execution scratch.  Pool workers
/// are process-lifetime threads, so keeping WorkerState (and one FiberPool
/// per requested stack size) thread-local makes the steady state of a
/// host-parallel engine allocation-free: fibers, contexts and shared
/// memory are all reused across launches and across devices.
WorkerState& ThreadWorkerState(const DeviceProperties& props,
                               std::size_t fiber_stack_bytes) {
  struct TlsState {
    WorkerState ws;
    std::unordered_map<std::size_t, FiberPool> pools;
  };
  thread_local TlsState tls;
  auto it = tls.pools.find(fiber_stack_bytes);
  if (it == tls.pools.end()) {
    it = tls.pools
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(fiber_stack_bytes),
                      std::forward_as_tuple(fiber_stack_bytes))
             .first;
  }
  tls.ws.pool = &it->second;
  tls.ws.props = &props;
  return tls.ws;
}

}  // namespace

void ThreadCtx::syncthreads() {
  if (fiber_ == nullptr) {
    if (block_dim.count() == 1) return;  // trivially synchronized
    throw GpuError(
        "syncthreads() called in a non-cooperative launch; set "
        "LaunchOptions::cooperative");
  }
  fiber_->Yield();
}

Device::Device(DeviceProperties props)
    : props_(std::move(props)), model_(props_) {}

Device::~Device() = default;

void Device::set_worker_threads(unsigned workers) {
  workers_ = workers == 0 ? 1u : workers;
}

unsigned Device::worker_threads() const {
  if (workers_ != 0) return workers_;
  return exec_backend_ == exec::ExecBackend::kHostParallel
             ? exec::ActiveExecWorkers()
             : 1u;
}

void Device::ValidateLaunch(Dim3 grid, Dim3 block,
                            std::size_t shared_bytes) const {
  if (grid.count() == 0 || block.count() == 0) {
    throw GpuError("launch: empty grid or block");
  }
  if (block.count() > props_.max_threads_per_block) {
    throw GpuError("launch: " + std::to_string(block.count()) +
                   " threads per block exceeds device limit " +
                   std::to_string(props_.max_threads_per_block));
  }
  if (block.x > props_.max_block_dim_x || block.y > props_.max_block_dim_y ||
      block.z > props_.max_block_dim_z) {
    throw GpuError("launch: block dimension exceeds device limit");
  }
  if (grid.x > props_.max_grid_dim_x) {
    throw GpuError("launch: grid.x exceeds device limit");
  }
  if (shared_bytes > props_.shared_mem_per_block) {
    throw GpuError("launch: " + std::to_string(shared_bytes) +
                   " bytes of shared memory exceeds per-block limit " +
                   std::to_string(props_.shared_mem_per_block));
  }
}

double Device::ExecuteLaunch(Dim3 grid, Dim3 block,
                             const LaunchOptions& opts,
                             const KernelFn& kernel) {
  ValidateLaunch(grid, block, opts.shared_bytes);

  std::uint64_t total_work = 0;
  std::uint64_t max_work = 0;
  const unsigned cap = worker_threads();
  if (cap <= 1 || grid.count() <= 1) {
    RunBlocksSequential(grid, block, opts, kernel, total_work, max_work);
  } else {
    RunBlocksParallel(grid, block, opts, kernel, cap, total_work,
                      max_work);
  }

  const LaunchCharge charge{grid, block, total_work, max_work,
                            opts.shared_bytes};
  const double seconds = model_.KernelSeconds(charge);
  profiler_.RecordKernel(opts.name, grid.count(),
                         grid.count() * block.count(), total_work, seconds);
  return seconds;
}

void Device::Launch(Dim3 grid, Dim3 block, const LaunchOptions& opts,
                    const KernelFn& kernel) {
  const double start = sim_time_s_;
  const double seconds = ExecuteLaunch(grid, block, opts, kernel);
  sim_time_s_ = start + seconds;
  if (trace::Enabled()) {
    trace::Complete(trace::InternName(opts.name), SimNs(start),
                    SimNs(seconds), SimTrack());
  }
}

void Device::LaunchAsync(Stream& stream, Dim3 grid, Dim3 block,
                         const LaunchOptions& opts, const KernelFn& kernel) {
  if (stream.device_ != this) {
    throw GpuError("LaunchAsync: stream belongs to another device");
  }
  const double seconds = ExecuteLaunch(grid, block, opts, kernel);
  const double start = std::max(stream.ready_at_, sim_time_s_);
  stream.ready_at_ = start + seconds;
  if (trace::Enabled()) {
    trace::Complete(trace::InternName(opts.name), SimNs(start),
                    SimNs(seconds), SimTrack());
  }
}

void Device::RunBlocksSequential(Dim3 grid, Dim3 block,
                                 const LaunchOptions& opts,
                                 const KernelFn& kernel,
                                 std::uint64_t& total_work,
                                 std::uint64_t& max_work) {
  WorkerState ws;
  FiberPool local_pool(opts.fiber_stack_bytes);
  ws.props = &props_;
  ws.pool = &pool_;
  // A custom stack size forces a dedicated pool (the shared one has fixed
  // stacks).
  if (opts.fiber_stack_bytes != 64 * 1024) ws.pool = &local_pool;
  try {
    for (std::size_t b = 0; b < grid.count(); ++b) {
      const BlockResult r = RunOneBlock(grid, block, b, opts, kernel, ws);
      total_work += r.total_work;
      max_work = std::max(max_work, r.max_work);
    }
  } catch (...) {
    // Sibling fibers of a failing block remain suspended; drop them so the
    // shared pool stays usable for future launches.
    ws.pool->Clear();
    throw;
  }
}

void Device::RunBlocksParallel(Dim3 grid, Dim3 block,
                               const LaunchOptions& opts,
                               const KernelFn& kernel, unsigned cap,
                               std::uint64_t& total_work,
                               std::uint64_t& max_work) {
  // Blocks fan out over the process-wide persistent pool; each worker's
  // charge aggregates land in a block-indexed slot (disjoint writes) and
  // reduce below in block-index order.  The sums are exact integers, so
  // the reduction — and therefore the modeled time — is bit-identical to
  // the serial backend no matter which worker ran which block.
  std::vector<BlockResult> results(grid.count());
  exec::HostThreadPool::Instance().ParallelFor(
      grid.count(), cap, [&](std::size_t b) {
        WorkerState& ws =
            ThreadWorkerState(props_, opts.fiber_stack_bytes);
        try {
          results[b] = RunOneBlock(grid, block, b, opts, kernel, ws);
        } catch (...) {
          // Sibling fibers of the failing block remain suspended; drop
          // them so this worker's pool stays usable for future launches.
          ws.pool->Clear();
          throw;
        }
      });
  for (const BlockResult& r : results) {
    total_work += r.total_work;
    max_work = std::max(max_work, r.max_work);
  }
}

void Device::Synchronize() {
  // Functionally a no-op (launches are synchronous); charge the fence cost
  // the paper pays after each generation's four kernels (Section VI-D),
  // and join every live stream's timeline.
  for (Stream* stream : streams_) {
    sim_time_s_ = std::max(sim_time_s_, stream->ready_at_);
  }
  if (trace::Enabled()) {
    trace::Complete("sync", SimNs(sim_time_s_),
                    SimNs(props_.launch_overhead_s), SimTrack());
  }
  sim_time_s_ += props_.launch_overhead_s;
}

Stream::Stream(Device& device) : device_(&device) {
  ready_at_ = device.sim_time_s();
  device.streams_.push_back(this);
}

Stream::~Stream() {
  auto& streams = device_->streams_;
  streams.erase(std::remove(streams.begin(), streams.end(), this),
                streams.end());
}

void Stream::Synchronize() {
  device_->sim_time_s_ = std::max(device_->sim_time_s_, ready_at_);
}

void Device::RegisterAlloc(std::size_t bytes, bool constant) {
  if (constant) {
    if (constant_allocated_ + bytes > props_.constant_mem) {
      throw GpuError("constant memory exhausted");
    }
    constant_allocated_ += bytes;
    return;
  }
  if (allocated_ + bytes > props_.global_mem) {
    throw GpuError("device global memory exhausted (" +
                   std::to_string(allocated_ + bytes) + " > " +
                   std::to_string(props_.global_mem) + " bytes)");
  }
  allocated_ += bytes;
}

void Device::ReleaseAlloc(std::size_t bytes, bool constant) noexcept {
  if (constant) {
    constant_allocated_ -= std::min(constant_allocated_, bytes);
  } else {
    allocated_ -= std::min(allocated_, bytes);
  }
}

void Device::RecordH2D(std::size_t bytes) {
  const double seconds = model_.TransferSeconds(bytes, true);
  if (trace::Enabled()) {
    trace::Complete("h2d", SimNs(sim_time_s_), SimNs(seconds), SimTrack());
    trace::CounterSampleAt("h2d.bytes", SimNs(sim_time_s_),
                           static_cast<std::int64_t>(bytes), SimTrack());
  }
  sim_time_s_ += seconds;
  profiler_.RecordTransfer(true, bytes, seconds);
}

void Device::RecordD2H(std::size_t bytes) {
  const double seconds = model_.TransferSeconds(bytes, false);
  if (trace::Enabled()) {
    trace::Complete("d2h", SimNs(sim_time_s_), SimNs(seconds), SimTrack());
    trace::CounterSampleAt("d2h.bytes", SimNs(sim_time_s_),
                           static_cast<std::int64_t>(bytes), SimTrack());
  }
  sim_time_s_ += seconds;
  profiler_.RecordTransfer(false, bytes, seconds);
}

}  // namespace cdd::sim

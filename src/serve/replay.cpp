#include "serve/replay.hpp"

#include <exception>
#include <istream>
#include <ostream>
#include <span>
#include <string>

#include "core/hash.hpp"

namespace cdd::serve {

trace::ManifestRecord MakeManifestRecord(const Instance& instance,
                                         const std::string& engine,
                                         const EngineOptions& options,
                                         const meta::RunResult& result) {
  trace::ManifestRecord record;
  record.engine = engine;
  record.instance = instance;
  record.instance_hash = HashInstance(instance);
  record.options.generations = options.generations;
  record.options.seed = options.seed;
  record.options.ensemble = options.ensemble;
  record.options.block = options.block;
  record.options.chains = options.chains;
  record.options.trajectory_stride = options.trajectory_stride;
  record.options.vshape_init = options.vshape_init;
  record.options.portfolio = options.portfolio;
  record.options.race_slice = options.race_slice;
  record.best_cost = result.best_cost;
  record.evaluations = result.evaluations;
  record.trajectory_samples = result.trajectory.size();
  record.trajectory_digest = trace::TrajectoryDigest(
      std::span<const Cost>(result.trajectory));
  return record;
}

EngineOptions OptionsFromManifest(const trace::ManifestOptions& options) {
  EngineOptions out;
  out.generations = options.generations;
  out.seed = options.seed;
  out.ensemble = options.ensemble;
  out.block = options.block;
  out.chains = options.chains;
  out.trajectory_stride = options.trajectory_stride;
  out.vshape_init = options.vshape_init;
  out.portfolio = options.portfolio;
  out.race_slice = options.race_slice;
  return out;
}

ReplayOutcome ReplayRecord(const trace::ManifestRecord& record,
                           const EngineRegistry& registry) {
  ReplayOutcome outcome;
  outcome.engine = record.engine;
  outcome.jobs = record.instance.size();
  outcome.recorded_cost = record.best_cost;
  outcome.recorded_evaluations = record.evaluations;

  try {
    trace::VerifyManifestIntegrity(record);
  } catch (const trace::ManifestError& e) {
    outcome.error = e.what();
    return outcome;
  }

  const EngineFn* engine = registry.Find(record.engine);
  if (engine == nullptr) {
    outcome.error = "unknown engine '" + record.engine + "'";
    return outcome;
  }

  EngineRun run;
  try {
    run = (*engine)(record.instance, OptionsFromManifest(record.options));
  } catch (const std::exception& e) {
    outcome.error = std::string("engine failed: ") + e.what();
    return outcome;
  }

  outcome.replayed_cost = run.result.best_cost;
  outcome.replayed_evaluations = run.result.evaluations;
  const std::uint64_t replayed_digest = trace::TrajectoryDigest(
      std::span<const Cost>(run.result.trajectory));

  if (run.result.stopped) {
    outcome.error = "replay was truncated (stop token fired)";
  } else if (run.result.best_cost != record.best_cost) {
    outcome.error = "best_cost mismatch: recorded " +
                    std::to_string(record.best_cost) + ", replayed " +
                    std::to_string(run.result.best_cost);
  } else if (run.result.evaluations != record.evaluations) {
    outcome.error = "evaluation count mismatch: recorded " +
                    std::to_string(record.evaluations) + ", replayed " +
                    std::to_string(run.result.evaluations);
  } else if (run.result.trajectory.size() != record.trajectory_samples) {
    outcome.error = "trajectory length mismatch: recorded " +
                    std::to_string(record.trajectory_samples) +
                    ", replayed " +
                    std::to_string(run.result.trajectory.size());
  } else if (replayed_digest != record.trajectory_digest) {
    outcome.error = "trajectory digest mismatch";
  } else {
    outcome.ok = true;
  }
  return outcome;
}

ReplaySummary ReplayStream(std::istream& in, std::ostream& log,
                           const EngineRegistry& registry) {
  ReplaySummary summary;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++summary.total;

    trace::ManifestRecord record;
    try {
      record = trace::ParseManifestLine(line);
    } catch (const trace::ManifestError& e) {
      ++summary.failed;
      log << "line " << line_no << ": FAIL (" << e.what() << ")\n";
      continue;
    }

    const ReplayOutcome outcome = ReplayRecord(record, registry);
    if (outcome.ok) {
      ++summary.passed;
      log << "line " << line_no << ": ok engine=" << outcome.engine
          << " n=" << outcome.jobs << " best_cost=" << outcome.replayed_cost
          << " evaluations=" << outcome.replayed_evaluations << "\n";
    } else {
      ++summary.failed;
      log << "line " << line_no << ": FAIL engine=" << outcome.engine
          << " n=" << outcome.jobs << " (" << outcome.error << ")\n";
    }
  }
  return summary;
}

}  // namespace cdd::serve

#pragma once
/// \file engine_registry.hpp
/// \brief Name -> solver adapters over the library's ten engines
/// (eight heuristics, the exact branch-and-bound tier and the racing
/// portfolio).
///
/// The registry is the single place where an engine name ("psa", "host",
/// "sa", ...) maps to runnable code, so the cdd_solve CLI, the
/// SolverService and the load generator all accept exactly the same names
/// and reject unknown ones the same way.  Each adapter translates the
/// uniform EngineOptions into the engine's native parameter struct, runs
/// it, and normalizes the outcome into a meta::RunResult plus the modeled
/// device time (zero for host-side engines).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/candidate_pool.hpp"
#include "core/instance.hpp"
#include "core/stop_token.hpp"
#include "cudasim/device.hpp"
#include "meta/engine.hpp"
#include "meta/result.hpp"

namespace cdd::serve {

/// Engine-independent knobs of one solve.  Fields an engine has no use for
/// are ignored (e.g. `chains` by "sa", `ensemble`/`block` by every serial
/// engine); CacheKey() hashes only result-determining fields, and
/// deliberately not `threads` (RunHostEnsembleSa is thread-count
/// invariant), `stop` or `device`.
struct EngineOptions {
  std::uint64_t generations = 1000;  ///< iterations / generations budget
  std::uint64_t seed = 1;
  std::uint32_t ensemble = 768;  ///< parallel engines: total GPU threads
  std::uint32_t block = 192;     ///< parallel engines: threads per block
  std::uint32_t chains = 64;     ///< "host": independent SA chains
  std::uint32_t threads = 0;  ///< "host"/"bnb": workers (0 = hardware cap)
  bool vshape_init = false;      ///< parallel engines: V-shape seeding
  /// When > 0, RunResult::trajectory samples the best-so-far cost every
  /// this many iterations/generations (engines without trajectory
  /// machinery — "host", "psa-sync" — ignore it).  Result-determining in
  /// the sense that the returned record differs, so CacheKey hashes it.
  std::uint32_t trajectory_stride = 0;
  /// Cooperative cancellation, forwarded into the engine's search loop.
  StopToken stop{};
  /// Simulated device for the parallel engines.  When null the adapter
  /// creates a private GT 560M per call (what the service does); the CLI
  /// passes its own device so --profile sees the kernels.
  sim::Device* device = nullptr;
  /// Execution backend applied to the private device the adapter creates
  /// (serve/CLI plumbing; see sim::exec::ActiveExecBackend).  Unset
  /// defers to the process-wide CDD_EXEC_BACKEND resolution; ignored when
  /// `device` is supplied (the caller configured its own device).  Like
  /// `threads`, never hashed by CacheKey — execution placement does not
  /// change results.
  std::optional<sim::exec::ExecBackend> exec_backend;
  /// Request-scoped candidate pool lent by the serve layer (zero-copy
  /// handoff; see PoolCapacityHint).  Engines that can stage their
  /// generations in it borrow it instead of allocating; null means every
  /// engine allocates privately.  Like `stop` and `device`, never hashed
  /// by CacheKey — placement does not change results.
  CandidatePool* pool = nullptr;
  /// "race" only: comma-separated contender names ("sa,dpso,psa").  Empty
  /// defers to CDD_RACE_PORTFOLIO, and when that is unset too the bandit
  /// prior picks the contenders adaptively from past wins — which makes
  /// the run non-reproducible across processes, so the serve layer skips
  /// the result cache and the run manifest for such races (see
  /// RacePortfolioPinned).  Result-determining, hashed by CacheKey.
  std::string portfolio;
  /// "race" only: Step units each live contender advances per scheduling
  /// round (0 defers to CDD_RACE_SLICE, then 64).  Result-determining —
  /// the kill schedule depends on it — so CacheKey hashes it.
  std::uint64_t race_slice = 0;
};

/// True when a "race" run with these options is reproducible: the
/// contender list is pinned by `options.portfolio` or CDD_RACE_PORTFOLIO
/// rather than chosen by the in-process bandit prior.  Pinned races are
/// deterministic (cacheable, manifest-recordable); adaptive ones are not.
bool RacePortfolioPinned(const EngineOptions& options);

/// Copies CDD_RACE_PORTFOLIO into `options.portfolio` when the latter is
/// empty.  The front doors (CLI, service Submit) call this for "race"
/// requests so that cache keys and manifest records carry the *effective*
/// contender list — an env-pinned race must replay identically in a
/// process where the variable is no longer set.
void MaterializeRacePortfolio(EngineOptions& options);

/// True for the engines that run on the simulated device ("psa", "pdpso",
/// "psa-sync") — their generations live in device buffers, so a lent pool
/// would sit on the wrong side of the bus.
bool IsDeviceEngine(std::string_view name);

/// True when the named engine can solve \p instance's problem variant.
/// Single-machine total-penalty instances are supported by every engine.
/// Parallel-machine (Instance::machines() > 1) and early-work instances
/// are searched over (permutation, splits) candidates; only the
/// single-chain "sa" and "ta" engines carry that move set (see
/// docs/WORKLOADS.md for the support matrix).
bool EngineSupportsInstance(std::string_view name, const Instance& instance);

/// Human-readable reason EngineSupportsInstance is false, empty when the
/// engine supports the variant.  The service's admission path returns it
/// as the rejection diagnostic.
std::string EngineSupportDiagnostic(std::string_view name,
                                    const Instance& instance);

/// Throws std::invalid_argument with EngineSupportDiagnostic's message
/// when EngineSupportsInstance is false, so the CLI, the service and race
/// contender construction reject unsupported variants identically.
void RequireEngineSupports(std::string_view name, const Instance& instance);

/// Rows a request-scoped pool needs so the named engine can stage a full
/// generation in it; 0 means the engine cannot borrow a shared pool
/// ("host" fans out per-thread chains, device engines use device buffers)
/// and the serve layer should not lend one.
std::size_t PoolCapacityHint(std::string_view name,
                             const EngineOptions& options);

/// Normalized engine outcome.
struct EngineRun {
  meta::RunResult result;
  double device_seconds = 0.0;  ///< modeled GPU time; 0 for host engines
};

using EngineFn =
    std::function<EngineRun(const Instance&, const EngineOptions&)>;

/// Creates a resumable engine (meta::Engine lifecycle) for one solve.
/// The returned engine owns everything it needs — factories for the
/// device engines bundle a private simulated device with the engine when
/// `options.device` is null — so it can be stepped, checkpointed and
/// preempted long after the factory call returns.
using EngineFactory = std::function<std::unique_ptr<meta::Engine>(
    const Instance&, const EngineOptions&)>;

/// Immutable-after-setup name -> engine table.
class EngineRegistry {
 public:
  /// Registers \p fn under \p name, replacing any previous entry.
  void Register(std::string name, EngineFn fn);

  /// Registers a resumable-engine factory under \p name and derives the
  /// one-shot EngineFn from it (construct, run to completion, finish), so
  /// Find() and FindFactory() always agree on the run they produce.
  void RegisterFactory(std::string name, EngineFactory factory);

  /// Looks up an engine; nullptr when the name is unknown.
  const EngineFn* Find(std::string_view name) const;

  /// Looks up a resumable-engine factory; nullptr when the name is
  /// unknown or was registered through Register() only.
  const EngineFactory* FindFactory(std::string_view name) const;

  /// All registered names, sorted (for error messages and --help).
  std::vector<std::string> Names() const;

  /// The built-in engines: psa, pdpso, psa-sync (simulated GPU), sa, dpso,
  /// ta, es (serial), host (multi-threaded CPU ensemble), bnb (exact) and
  /// race (convergence-driven portfolio over the others).  All are
  /// registered through RegisterFactory, so every one is resumable.
  static const EngineRegistry& Default();

 private:
  std::map<std::string, EngineFn, std::less<>> engines_;
  std::map<std::string, EngineFactory, std::less<>> factories_;
};

}  // namespace cdd::serve

#pragma once
/// \file engine_registry.hpp
/// \brief Name -> solver adapters over the library's nine engines
/// (eight heuristics plus the exact branch-and-bound tier).
///
/// The registry is the single place where an engine name ("psa", "host",
/// "sa", ...) maps to runnable code, so the cdd_solve CLI, the
/// SolverService and the load generator all accept exactly the same names
/// and reject unknown ones the same way.  Each adapter translates the
/// uniform EngineOptions into the engine's native parameter struct, runs
/// it, and normalizes the outcome into a meta::RunResult plus the modeled
/// device time (zero for host-side engines).

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/candidate_pool.hpp"
#include "core/instance.hpp"
#include "core/stop_token.hpp"
#include "cudasim/device.hpp"
#include "meta/result.hpp"

namespace cdd::serve {

/// Engine-independent knobs of one solve.  Fields an engine has no use for
/// are ignored (e.g. `chains` by "sa", `ensemble`/`block` by every serial
/// engine); CacheKey() hashes only result-determining fields, and
/// deliberately not `threads` (RunHostEnsembleSa is thread-count
/// invariant), `stop` or `device`.
struct EngineOptions {
  std::uint64_t generations = 1000;  ///< iterations / generations budget
  std::uint64_t seed = 1;
  std::uint32_t ensemble = 768;  ///< parallel engines: total GPU threads
  std::uint32_t block = 192;     ///< parallel engines: threads per block
  std::uint32_t chains = 64;     ///< "host": independent SA chains
  std::uint32_t threads = 0;  ///< "host"/"bnb": workers (0 = hardware cap)
  bool vshape_init = false;      ///< parallel engines: V-shape seeding
  /// When > 0, RunResult::trajectory samples the best-so-far cost every
  /// this many iterations/generations (engines without trajectory
  /// machinery — "host", "psa-sync" — ignore it).  Result-determining in
  /// the sense that the returned record differs, so CacheKey hashes it.
  std::uint32_t trajectory_stride = 0;
  /// Cooperative cancellation, forwarded into the engine's search loop.
  StopToken stop{};
  /// Simulated device for the parallel engines.  When null the adapter
  /// creates a private GT 560M per call (what the service does); the CLI
  /// passes its own device so --profile sees the kernels.
  sim::Device* device = nullptr;
  /// Execution backend applied to the private device the adapter creates
  /// (serve/CLI plumbing; see sim::exec::ActiveExecBackend).  Unset
  /// defers to the process-wide CDD_EXEC_BACKEND resolution; ignored when
  /// `device` is supplied (the caller configured its own device).  Like
  /// `threads`, never hashed by CacheKey — execution placement does not
  /// change results.
  std::optional<sim::exec::ExecBackend> exec_backend;
  /// Request-scoped candidate pool lent by the serve layer (zero-copy
  /// handoff; see PoolCapacityHint).  Engines that can stage their
  /// generations in it borrow it instead of allocating; null means every
  /// engine allocates privately.  Like `stop` and `device`, never hashed
  /// by CacheKey — placement does not change results.
  CandidatePool* pool = nullptr;
};

/// True for the engines that run on the simulated device ("psa", "pdpso",
/// "psa-sync") — their generations live in device buffers, so a lent pool
/// would sit on the wrong side of the bus.
bool IsDeviceEngine(std::string_view name);

/// Rows a request-scoped pool needs so the named engine can stage a full
/// generation in it; 0 means the engine cannot borrow a shared pool
/// ("host" fans out per-thread chains, device engines use device buffers)
/// and the serve layer should not lend one.
std::size_t PoolCapacityHint(std::string_view name,
                             const EngineOptions& options);

/// Normalized engine outcome.
struct EngineRun {
  meta::RunResult result;
  double device_seconds = 0.0;  ///< modeled GPU time; 0 for host engines
};

using EngineFn =
    std::function<EngineRun(const Instance&, const EngineOptions&)>;

/// Immutable-after-setup name -> engine table.
class EngineRegistry {
 public:
  /// Registers \p fn under \p name, replacing any previous entry.
  void Register(std::string name, EngineFn fn);

  /// Looks up an engine; nullptr when the name is unknown.
  const EngineFn* Find(std::string_view name) const;

  /// All registered names, sorted (for error messages and --help).
  std::vector<std::string> Names() const;

  /// The built-in engines: psa, pdpso, psa-sync (simulated GPU), sa, dpso,
  /// ta, es (serial) and host (multi-threaded CPU ensemble).
  static const EngineRegistry& Default();

 private:
  std::map<std::string, EngineFn, std::less<>> engines_;
};

}  // namespace cdd::serve

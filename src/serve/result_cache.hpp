#pragma once
/// \file result_cache.hpp
/// \brief Sharded LRU cache of solve results.
///
/// Keyed by the 64-bit canonical request hash (core/hash.hpp over the
/// instance, combined with engine name and search parameters — see
/// serve::CacheKey).  Sharded so concurrent workers rarely contend on the
/// same mutex: the shard is selected from the key's high bits, each shard
/// is an independent LRU of capacity/shards entries.
///
/// Only *completed* runs belong in the cache; the service never inserts a
/// deadline-truncated result, so a hit is always as good as a fresh solve.
///
/// Entries are immutable once inserted and handed out as
/// shared_ptr<const Entry>: a hit refreshes recency and bumps a reference
/// count instead of deep-copying the RunResult (whose convergence
/// trajectory can dwarf the rest of the response) under the shard mutex.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "meta/result.hpp"

namespace cdd::serve {

/// Aggregate hit/miss/eviction counts across all shards.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Thread-safe sharded LRU mapping request keys to finished runs.
class ResultCache {
 public:
  /// A cached solve outcome.
  struct Entry {
    meta::RunResult result;
    double device_seconds = 0.0;  ///< modeled GPU time (parallel engines)
  };

  /// \p capacity 0 disables the cache entirely (every Get misses without
  /// touching a shard mutex, Put is a no-op).  \p shards is clamped to
  /// [1, capacity].
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  /// Returns the entry and refreshes its recency, or nullptr on miss.
  /// The entry is shared, not copied — hits are O(1) regardless of the
  /// trajectory size — and immutable, so the pointer stays valid after
  /// eviction.
  std::shared_ptr<const Entry> Get(std::uint64_t key);

  /// Inserts or refreshes; evicts the shard's least-recently-used entry
  /// when the shard is full.
  void Put(std::uint64_t key, Entry entry);

  CacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shards() const { return shards_.size(); }

 private:
  using LruList =
      std::list<std::pair<std::uint64_t, std::shared_ptr<const Entry>>>;

  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    LruList lru;
    std::unordered_map<std::uint64_t, LruList::iterator> index;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& ShardFor(std::uint64_t key) {
    // Keys are SplitMix-mixed, so the high bits are as uniform as any.
    return *shards_[(key >> 32) % shards_.size()];
  }

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cdd::serve

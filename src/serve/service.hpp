#pragma once
/// \file service.hpp
/// \brief SolverService — the request-driven front of the solver library.
///
/// Composition (one instance of each, wired in the constructor):
///
///   Submit() -> [cache fast path] -> [single-flight join]
///                 -> [admission control] -> JobQueue (bounded, rejecting)
///                     -> WorkerPool -> EngineRegistry
///                          -> ResultCache / InflightTable / Metrics
///
/// Invariants the tests pin down:
///  * No accepted request is ever lost: every future returned by Submit()
///    resolves — solved, cache-served, coalesced, deadline-expired,
///    failed, shed, or answered kShutdown during CancelAll().
///  * Backpressure is synchronous: a full queue rejects at Submit() time
///    with kRejectedQueueFull (kShuttingDown once the queue is closed);
///    nothing is silently queued beyond capacity.
///  * Single-flight: concurrent requests with the same canonical key
///    share one solve — duplicates attach as waiters to the in-flight
///    leader and receive its bit-identical result.  A leader that cannot
///    deliver a full-budget result re-elects a waiter instead of handing
///    out a truncated one.
///  * Overload sheds lowest-priority work first: past the high watermark
///    an arrival either displaces strictly-lower-priority queued work
///    (which is answered kShedOverload) or is itself shed.
///  * Deadlines are honored cooperatively: the worker arms a per-request
///    StopSource and the engine's search loop truncates; a request whose
///    deadline passed while queued is answered without solving at all.
///  * Only complete (unstopped) runs enter the result cache, so a cache
///    hit is bit-identical to a fresh full solve of the same request.
///  * "host" runs are clamped to 1 thread per worker — legal because
///    RunHostEnsembleSa is thread-count invariant (documented contract) —
///    so a w-worker service never oversubscribes the machine.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pool_allocator.hpp"
#include "core/stop_token.hpp"
#include "serve/engine_registry.hpp"
#include "serve/inflight.hpp"
#include "serve/job_queue.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "serve/result_cache.hpp"
#include "serve/worker_pool.hpp"

namespace cdd::serve {

/// Sizing of one SolverService.
struct ServiceConfig {
  unsigned workers = 4;             ///< solver threads
  std::size_t queue_capacity = 256; ///< admission bound (backpressure)
  std::size_t cache_capacity = 4096;///< result-cache entries; 0 disables
  std::size_t cache_shards = 8;
  /// When non-empty, every *completed* (full-budget, uncached) solve
  /// appends one JSONL run manifest here — the record tools/sched_replay
  /// re-executes and verifies bit-identically.  Truncated and failed runs
  /// are never recorded: a manifest always describes a reproducible run.
  std::string manifest_path;
  /// Candidate-pool placement for request-scoped pools ("host", "pinned",
  /// "device", "numa").  Empty defers to CDD_POOL_BACKEND (then "host").
  /// Placement never changes results — only the modeled transfer cost.
  std::string pool_backend;
  /// Block-execution backend for the private simulated devices the device
  /// engines run on ("serial", "host-parallel"); see
  /// sim::exec::ActiveExecBackend.  Empty defers to CDD_EXEC_BACKEND —
  /// with one guard: a service whose worker pool alone already covers the
  /// hardware clamps the env-derived host-parallel default back to serial
  /// (each request would only contend with its siblings for the same
  /// cores), counted in the `exec_clamped` metric.  An explicit setting
  /// here is honored as-is.  Execution placement never changes results.
  std::string exec_backend;
  /// Test seam: when non-null, overrides `pool_backend` entirely and every
  /// request-scoped pool allocates through this allocator (e.g. an
  /// always-failing one to exercise the host-fallback path).  Must outlive
  /// the service.  Not owned.
  core::PoolAllocator* pool_allocator = nullptr;
  /// Engine-native Step units (SA iterations, DPSO generations, BnB
  /// nodes, race rounds) a worker runs between preemption checks.  Zero
  /// (the default) keeps the one-shot path: every solve runs to
  /// completion uninterrupted.  When set, a worker pauses at each slice
  /// boundary and, if a strictly higher-priority request is queued,
  /// solves it first (nested, bounded depth) before resuming — the paused
  /// engine's state simply stays live on the worker's stack, which is
  /// exactly what the resumable-engine refactor buys the service.
  /// Slicing never changes results (bit-identical split-run guarantee);
  /// it only reorders wall-clock time between requests.
  std::uint64_t preempt_slice = 0;
  /// Nested-preemption cap: a worker's stack holds at most this many
  /// paused solves.  At the cap, a queued higher-priority job waits for a
  /// free worker like everyone else — observable through the
  /// `preempt_depth_limited` counter and `serve.preempt_depth_limited`
  /// trace instant, so starvation at the cap is never silent.
  unsigned max_preempt_depth = 4;
  /// Admission-control watermarks on queue depth.  0/0 (the default)
  /// defers to CDD_SERVE_WATERMARKS ("low:high", absolute depths); when
  /// that is unset too, admission control is off and the queue behaves
  /// exactly as before (full -> kRejectedQueueFull).  With a high
  /// watermark:
  ///  * depth >= high: overload.  An arrival displaces the newest
  ///    strictly-lower-priority queued job (answered kShedOverload) or,
  ///    when it is itself lowest, is shed directly.
  ///  * depth >= low: caution.  Requests whose deadline is provably
  ///    unattainable (predicted wait from the solve-latency histogram
  ///    already exceeds it) are rejected kRejectedDeadlineInfeasible, and
  ///    tenants past their fair share (capacity / active tenants) are
  ///    shed kShedOverload.
  /// Both are clamped to the queue capacity (low additionally to high).
  std::size_t shed_low_watermark = 0;
  std::size_t shed_high_watermark = 0;
};

/// Concurrent solve service over the engine registry.  Thread-safe:
/// Submit() may be called from any number of client threads.
class SolverService {
 public:
  explicit SolverService(
      ServiceConfig config,
      const EngineRegistry& registry = EngineRegistry::Default());

  /// Drains and joins (Shutdown()).
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Push-style completion hook: invoked exactly once with the final
  /// response, from whatever thread produced it (a worker, or the
  /// submitting thread for synchronous rejections and cache hits).  Must
  /// not block — the socket front-end uses it to enqueue the wire reply.
  using ResponseCallback = std::function<void(const SolveResponse&)>;

  /// Submits one request.  Always returns a valid future; rejections
  /// (queue full, unknown engine, shed) and cache hits resolve it
  /// immediately.
  std::future<SolveResponse> Submit(SolveRequest request) {
    return Submit(std::move(request), nullptr);
  }

  /// Submit with a completion callback (the future remains valid too and
  /// resolves after the callback runs).
  std::future<SolveResponse> Submit(SolveRequest request,
                                    ResponseCallback on_done);

  /// Graceful shutdown: stop admitting, let the workers drain every queued
  /// request to completion, join.  Idempotent.
  void Shutdown();

  /// Fast shutdown: stop admitting, cancel the in-flight runs through
  /// their stop tokens (best effort) and answer the still-queued requests
  /// with kShutdown, join.  Every future still resolves.  Idempotent.
  void CancelAll();

  MetricsRegistry& metrics() { return metrics_; }
  const ResultCache& cache() const { return cache_; }
  unsigned workers() const { return config_.workers; }
  /// Placement of request-scoped pools after config/env resolution (what
  /// pools are *requested* on; individual pools may still fall back).
  core::PoolBackend pool_backend() const {
    return pool_allocator_->backend();
  }
  /// Execution backend the device engines' private devices run with,
  /// after config/env resolution and the oversubscription guard.
  sim::exec::ExecBackend exec_backend() const { return exec_backend_; }

 private:
  struct Job {
    SolveRequest request;
    const EngineFn* engine = nullptr;
    /// Resumable construction path; null only for engines registered
    /// through the legacy Register(EngineFn) seam, which then run
    /// one-shot even under a preempt_slice.
    const EngineFactory* factory = nullptr;
    std::uint64_t key = 0;
    std::chrono::steady_clock::time_point admitted;
    std::promise<SolveResponse> promise;
    ResponseCallback on_done;
  };

  /// \p depth counts nested preemptions on this worker's stack (a
  /// preempting job can itself be preempted, up to a fixed cap).
  void Process(Job&& job, unsigned slot, unsigned depth = 0);

  /// Invokes the callback (if any) and fulfills the promise — the single
  /// funnel every response of an accepted or shed job goes through.
  static void Deliver(Job& job, SolveResponse&& response);

  /// Leader finished with a full-budget (or cached) result: answer every
  /// waiter of \p key with a bit-identical copy and end the flight.
  void ResolveInflightSuccess(std::uint64_t key,
                              const SolveResponse& leader);

  /// Leader could not produce a full result (deadline, shutdown, shed,
  /// failure): promote the oldest waiter to leader and re-enqueue it; any
  /// waiter stranded by a closed or full queue is answered terminally.
  void ResolveInflightFailure(std::uint64_t key);

  /// Answers a queued job displaced by overload shedding, including its
  /// own flight's failure resolution.
  void ShedQueuedJob(Job&& victim);

  /// Admission bookkeeping for per-tenant fair share.
  void TenantEnqueued(const std::string& tenant);
  void TenantDequeued(const std::string& tenant);

  ServiceConfig config_;
  const EngineRegistry& registry_;
  ResultCache cache_;
  MetricsRegistry metrics_;

  // Hot-path metric handles, resolved once in the constructor.
  Counter* submitted_;
  Counter* enqueued_;
  Counter* rejected_queue_full_;
  Counter* rejected_shutdown_;       ///< pushes refused by a *closed* queue
  Counter* rejected_unknown_engine_;
  Counter* rejected_invalid_instance_;
  Counter* rejected_deadline_infeasible_;  ///< admission-time deadline math
  Counter* shed_overload_;           ///< requests dropped past the high mark
  Counter* shed_tenant_overquota_;   ///< fair-share sheds (subset of above)
  Counter* coalesced_joins_;         ///< duplicates attached to a flight
  Counter* coalesce_reelected_;      ///< waiters promoted to leader
  Counter* preempt_depth_limited_;   ///< preemptions skipped at the cap
  Counter* cache_hits_;
  Counter* completed_;
  Counter* deadline_expired_;
  Counter* cancelled_;
  Counter* failed_;
  Counter* pool_handoffs_;         ///< request pools lent to an engine
  Counter* pool_staging_copies_;   ///< modeled copies a lent pool required
  Counter* pool_alloc_fallbacks_;  ///< pools that fell back to host memory
  Counter* pool_reuse_hits_;       ///< device pools served from the free-list
  Counter* exec_clamped_;          ///< host-parallel defaults clamped to serial
  Counter* preemptions_;           ///< solves paused for higher-priority work
  LatencyHistogram* queue_ms_;
  LatencyHistogram* solve_ms_;

  /// Allocator behind every request-scoped pool, resolved once from
  /// ServiceConfig::pool_allocator / pool_backend / CDD_POOL_BACKEND.
  core::PoolAllocator* pool_allocator_;

  /// Exec backend for device engines, resolved once in the constructor
  /// (ServiceConfig::exec_backend / CDD_EXEC_BACKEND + the guard).
  sim::exec::ExecBackend exec_backend_;

  /// Free-list of idle device-resident request pools, keyed by shape
  /// (n, capacity; stride derives from n).  Device pools are the ones
  /// worth caching — host-side pools are a cheap aligned allocation, but
  /// a device pool models a resident GPU block that repeated same-shape
  /// solves can reuse without reallocating.  Bounded; see Process().
  std::mutex idle_pools_mutex_;
  std::vector<CandidatePool> idle_pools_;

  /// Run-manifest recording (ServiceConfig::manifest_path); the mutex
  /// serializes appends so lines from concurrent workers never interleave.
  std::mutex manifest_mutex_;
  std::ofstream manifest_;

  /// Single-flight dedup of concurrent identical requests.
  InflightTable inflight_;

  /// Per-tenant queued-request counts for the fair-share admission check.
  std::mutex tenant_mutex_;
  std::unordered_map<std::string, std::size_t> tenant_queued_;

  JobQueue<Job> queue_;
  /// One reusable StopSource per worker slot so CancelAll() can reach the
  /// runs currently executing.  unique_ptr: StopSource is not movable.
  std::vector<std::unique_ptr<StopSource>> slot_stops_;
  std::atomic<bool> aborting_{false};
  std::atomic<bool> stopped_{false};
  std::unique_ptr<WorkerPool<Job>> pool_;  // constructed last, joins first
};

}  // namespace cdd::serve

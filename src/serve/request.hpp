#pragma once
/// \file request.hpp
/// \brief Request/response records of the solver service.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/instance.hpp"
#include "meta/result.hpp"
#include "serve/engine_registry.hpp"

namespace cdd::serve {

/// Terminal state of one submitted request.
enum class SolveStatus {
  kOk,                     ///< solved to its full budget
  kCacheHit,               ///< served from the result cache, no solve ran
  kDeadlineExpired,        ///< deadline hit; result is the best-so-far
  kRejectedQueueFull,      ///< backpressure: not admitted, try later
  kRejectedUnknownEngine,  ///< engine name not in the registry
  /// Instance violates a documented evaluator precondition (e.g. a
  /// restricted UCDDCP instance, d < sum P_i); see SolveResponse::error.
  kRejectedInvalidInstance,
  /// Admission control predicted the request cannot meet its own deadline
  /// (expected queue wait from the latency histograms already exceeds it),
  /// so it was rejected instead of admitted to expire in the queue.
  kRejectedDeadlineInfeasible,
  /// Load shedding: the service is past its high watermark (or a tenant
  /// is past its fair share) and this request was the lowest-priority
  /// work available to drop.  Also used for queued work displaced by a
  /// higher-priority arrival under overload.
  kShedOverload,
  /// Rejected at Submit() because the service is shutting down — the
  /// admission queue is closed, not full.  Distinct from kShutdown (which
  /// answers work that was already accepted) and from kRejectedQueueFull
  /// (backpressure on a live service, worth retrying).
  kShuttingDown,
  kShutdown,               ///< service stopped before/while solving it
  kFailed,                 ///< engine threw; see SolveResponse::error
};

/// Stable lower-case name ("ok", "cache_hit", ...), for logs and tables.
std::string_view ToString(SolveStatus status);

/// Inverse of ToString (wire protocol deserialization); nullopt for names
/// that are not a SolveStatus.
std::optional<SolveStatus> SolveStatusFromName(std::string_view name);

/// One solve request.  The id is an opaque caller-side correlation tag.
struct SolveRequest {
  std::uint64_t id = 0;
  Instance instance;
  std::string engine = "sa";
  EngineOptions options;
  /// Wall-clock budget measured from admission; zero means none.  An
  /// expired request still returns its best-so-far sequence, flagged
  /// kDeadlineExpired.
  std::chrono::milliseconds deadline{0};
  /// Scheduling priority: higher dequeues first (FIFO within a level);
  /// with ServiceConfig::preempt_slice set, a higher-priority arrival also
  /// preempts a running lower-priority solve at its next checkpoint
  /// boundary.  Under overload (queue past the high watermark) the lowest
  /// priority level is shed first.  Priority orders work but never changes
  /// any result, so it is deliberately NOT part of the cache key.
  int priority = 0;
  /// Fair-share accounting tag.  Above the low watermark, a tenant whose
  /// queued requests already exceed its share (capacity / active tenants)
  /// is shed before it can starve the others.  The empty string is a
  /// valid tenant (single-tenant deployments never trip the check).
  /// Accounting-only — never part of the cache key.
  std::string tenant;
};

/// Outcome delivered through the future returned by Submit().
struct SolveResponse {
  std::uint64_t id = 0;
  SolveStatus status = SolveStatus::kFailed;
  meta::RunResult result;
  double device_seconds = 0.0;  ///< modeled GPU time (parallel engines)
  double queue_ms = 0.0;        ///< admission -> dequeue
  double solve_ms = 0.0;        ///< engine run time
  bool from_cache = false;
  /// True when this response was coalesced onto another identical request
  /// already in flight (single-flight): the result is the winner's run,
  /// bit-identical to what a private solve would have produced.
  bool coalesced = false;
  std::string error;  ///< populated for kFailed

  /// True when `result` carries a usable sequence.
  bool ok() const {
    return status == SolveStatus::kOk || status == SolveStatus::kCacheHit ||
           (status == SolveStatus::kDeadlineExpired &&
            !result.best.empty());
  }
};

/// Rejection diagnostic for instances that violate an evaluator
/// precondition, or the empty string when the request is admissible.
/// Today this enforces the UCDDCP unrestricted-case precondition
/// d >= sum(P_i) (Awasthi et al.); the service and the cdd_solve tool both
/// gate on it so no engine ever evaluates under a violated precondition.
std::string ValidateRequestInstance(const Instance& instance);

/// Canonical 64-bit cache/dedup key: instance hash combined with the
/// engine name and every result-determining option (generations, seed,
/// ensemble geometry, chains, vshape, trajectory stride, race portfolio
/// and slice) — and nothing else, so requests that
/// must produce identical results share a key regardless of deadline,
/// priority, tenant, thread count or submission order.
std::uint64_t CacheKey(const SolveRequest& request);

}  // namespace cdd::serve

#pragma once
/// \file request.hpp
/// \brief Request/response records of the solver service.

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/instance.hpp"
#include "meta/result.hpp"
#include "serve/engine_registry.hpp"

namespace cdd::serve {

/// Terminal state of one submitted request.
enum class SolveStatus {
  kOk,                     ///< solved to its full budget
  kCacheHit,               ///< served from the result cache, no solve ran
  kDeadlineExpired,        ///< deadline hit; result is the best-so-far
  kRejectedQueueFull,      ///< backpressure: not admitted, try later
  kRejectedUnknownEngine,  ///< engine name not in the registry
  /// Instance violates a documented evaluator precondition (e.g. a
  /// restricted UCDDCP instance, d < sum P_i); see SolveResponse::error.
  kRejectedInvalidInstance,
  kShutdown,               ///< service stopped before/while solving it
  kFailed,                 ///< engine threw; see SolveResponse::error
};

/// Stable lower-case name ("ok", "cache_hit", ...), for logs and tables.
std::string_view ToString(SolveStatus status);

/// One solve request.  The id is an opaque caller-side correlation tag.
struct SolveRequest {
  std::uint64_t id = 0;
  Instance instance;
  std::string engine = "sa";
  EngineOptions options;
  /// Wall-clock budget measured from admission; zero means none.  An
  /// expired request still returns its best-so-far sequence, flagged
  /// kDeadlineExpired.
  std::chrono::milliseconds deadline{0};
  /// Scheduling priority: higher dequeues first (FIFO within a level);
  /// with ServiceConfig::preempt_slice set, a higher-priority arrival also
  /// preempts a running lower-priority solve at its next checkpoint
  /// boundary.  Priority orders work but never changes any result, so it
  /// is deliberately NOT part of the cache key.
  int priority = 0;
};

/// Outcome delivered through the future returned by Submit().
struct SolveResponse {
  std::uint64_t id = 0;
  SolveStatus status = SolveStatus::kFailed;
  meta::RunResult result;
  double device_seconds = 0.0;  ///< modeled GPU time (parallel engines)
  double queue_ms = 0.0;        ///< admission -> dequeue
  double solve_ms = 0.0;        ///< engine run time
  bool from_cache = false;
  std::string error;  ///< populated for kFailed

  /// True when `result` carries a usable sequence.
  bool ok() const {
    return status == SolveStatus::kOk || status == SolveStatus::kCacheHit ||
           (status == SolveStatus::kDeadlineExpired &&
            !result.best.empty());
  }
};

/// Rejection diagnostic for instances that violate an evaluator
/// precondition, or the empty string when the request is admissible.
/// Today this enforces the UCDDCP unrestricted-case precondition
/// d >= sum(P_i) (Awasthi et al.); the service and the cdd_solve tool both
/// gate on it so no engine ever evaluates under a violated precondition.
std::string ValidateRequestInstance(const Instance& instance);

/// Canonical 64-bit cache/dedup key: instance hash combined with the
/// engine name and every result-determining option (generations, seed,
/// ensemble geometry, chains, vshape, trajectory stride, race portfolio
/// and slice) — and nothing else, so requests that
/// must produce identical results share a key regardless of deadline,
/// priority, thread count or submission order.
std::uint64_t CacheKey(const SolveRequest& request);

}  // namespace cdd::serve

#pragma once
/// \file inflight.hpp
/// \brief Single-flight table: concurrent identical requests share one
/// solve.
///
/// The ResultCache dedups *finished* work; this table dedups work *in
/// flight*.  Keyed exactly like the cache (serve::CacheKey over instance
/// + engine + result-determining options), so two requests share a flight
/// iff a completed one would have been a cache hit for the other.  The
/// first request through becomes the leader and runs normally; every
/// duplicate that arrives while the leader is queued or solving attaches
/// as a waiter and is answered with the leader's bit-identical result —
/// no queue slot consumed, no duplicate solve, no post-hoc race into the
/// cache.
///
/// When a leader cannot deliver a full-budget result (deadline expired,
/// shutdown, engine failure), its waiters must not inherit the truncated
/// outcome: the service *re-elects* one waiter as the new leader
/// (ReElect) and re-enqueues it, and the rest keep waiting on the new
/// flight.  The table therefore never strands a waiter — every entry
/// drains through Complete() or a ReElect() cascade.
///
/// Thread-safe; one mutex, held only for map/vector operations (never
/// across a solve or a promise delivery).

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/request.hpp"

namespace cdd::serve {

/// One request parked on an in-flight solve of the same key.  Carries the
/// full original request so a re-elected waiter can be turned back into a
/// runnable job.
struct InflightWaiter {
  SolveRequest request;
  std::chrono::steady_clock::time_point admitted;
  std::promise<SolveResponse> promise;
  /// Optional push-style completion (the socket front-end); invoked
  /// before the promise is fulfilled, like any other response.
  std::function<void(const SolveResponse&)> on_done;
};

/// Map of cache key -> waiters for the one in-flight solve of that key.
class InflightTable {
 public:
  /// Attaches \p *waiter to an existing flight of \p key (moves from it,
  /// returns true), or registers a new flight with the caller as leader
  /// (leaves \p *waiter untouched, returns false) — the same
  /// move-only-on-success contract as JobQueue::TryPush.
  bool JoinOrLead(std::uint64_t key, InflightWaiter* waiter) {
    const std::scoped_lock lock(mutex_);
    auto [it, inserted] = flights_.try_emplace(key);
    if (inserted) return false;
    it->second.push_back(std::move(*waiter));
    return true;
  }

  /// Ends the flight of \p key and returns its waiters for delivery.
  /// Call after the leader's result is final (and cached, so a duplicate
  /// racing with this removal hits the cache instead of a dead flight).
  std::vector<InflightWaiter> Complete(std::uint64_t key) {
    const std::scoped_lock lock(mutex_);
    const auto it = flights_.find(key);
    if (it == flights_.end()) return {};
    std::vector<InflightWaiter> waiters = std::move(it->second);
    flights_.erase(it);
    return waiters;
  }

  /// Leader failed to produce a full result: pops the oldest waiter to be
  /// promoted to leader, keeping the flight alive for the rest.  nullopt
  /// when no waiter is left — the flight is then erased entirely.
  std::optional<InflightWaiter> ReElect(std::uint64_t key) {
    const std::scoped_lock lock(mutex_);
    const auto it = flights_.find(key);
    if (it == flights_.end()) return std::nullopt;
    if (it->second.empty()) {
      flights_.erase(it);
      return std::nullopt;
    }
    InflightWaiter waiter = std::move(it->second.front());
    it->second.erase(it->second.begin());
    return waiter;
  }

  /// Number of live flights (leaders in queue or on a worker).
  std::size_t flights() const {
    const std::scoped_lock lock(mutex_);
    return flights_.size();
  }

  /// Waiters parked on \p key right now (0 when no such flight).
  std::size_t waiters(std::uint64_t key) const {
    const std::scoped_lock lock(mutex_);
    const auto it = flights_.find(key);
    return it == flights_.end() ? 0 : it->second.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<InflightWaiter>> flights_;
};

}  // namespace cdd::serve

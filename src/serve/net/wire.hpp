#pragma once
/// \file wire.hpp
/// \brief JSON payloads of the serve wire protocol (one per frame).
///
/// A request frame:
///
///   {"op":"solve","id":7,"engine":"sa",
///    "instance":{"problem":"cdd","due":40,"proc":[...],"min_proc":[...],
///                "early":[...],"tardy":[...],"compress":[...]},
///    "options":{"generations":100,"seed":1,...},     // optional, defaults
///    "deadline_ms":0,"priority":0,"tenant":""}       // optional, defaults
///
/// The instance object is byte-compatible with the run-manifest format —
/// both sides go through trace::WriteInstanceJson/ParseInstanceJson, so
/// the wire and the manifest cannot drift apart.  Parsing is strict:
/// malformed JSON, a wrong "op", a missing required field, a mistyped
/// value or an invalid instance all throw WireError with a diagnostic the
/// server returns verbatim in an error response.
///
/// A response frame mirrors SolveResponse:
///
///   {"id":7,"status":"ok","best_cost":126,"best":[2,0,1],
///    "evaluations":100,"stopped":false,"device_seconds":0.0,
///    "queue_ms":0.1,"solve_ms":1.2,"from_cache":false,"coalesced":false}
///
/// plus "error" when non-empty and "trajectory":[...] when recorded.
/// Responses on a connection are correlated by "id", not by order: a
/// keep-alive client that pipelines requests may see them complete
/// out of order.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/request.hpp"

namespace cdd::serve::net {

/// Malformed or mistyped wire payload.  Per-frame, recoverable: the
/// connection stays usable (framing is still in sync).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes \p request as one request payload (no framing).
std::string WriteRequest(const SolveRequest& request);

/// Strict inverse of WriteRequest.  Throws WireError on any defect.
SolveRequest ParseRequest(std::string_view payload);

/// Serializes \p response as one response payload (no framing).
std::string WriteResponse(const SolveResponse& response);

/// Strict inverse of WriteResponse.  Throws WireError on any defect.
SolveResponse ParseResponse(std::string_view payload);

/// A response payload carrying only an error (unparseable request): the
/// id is echoed when the broken request at least had one, 0 otherwise.
std::string WriteErrorResponse(std::uint64_t id, std::string_view error);

}  // namespace cdd::serve::net

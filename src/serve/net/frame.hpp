#pragma once
/// \file frame.hpp
/// \brief Length-prefixed message framing for the serve wire protocol.
///
/// Every message on the wire is one frame: a 4-byte big-endian unsigned
/// payload length followed by exactly that many payload bytes (the JSON
/// document; see wire.hpp).  Framing is what lets a keep-alive connection
/// carry many requests: the decoder re-synchronizes on exact byte counts,
/// never on delimiters inside the payload.
///
/// The decoder is strict: a zero-length frame and a frame longer than the
/// configured cap are both protocol errors (FrameError), not data.  A
/// malformed length cannot be resynchronized from — the caller must close
/// the connection — so the cap doubles as the memory bound one peer can
/// force on the other.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cdd::serve::net {

/// Broken framing (zero-length or over-cap frame).  Unrecoverable on a
/// stream: close the connection.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Default per-frame payload cap (4 MiB) — far above any real request,
/// far below what an adversarial length prefix could demand.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// Wraps \p payload in one frame (length prefix + bytes), ready to write.
std::string EncodeFrame(std::string_view payload);

/// Incremental frame parser over an arbitrary chunking of the byte
/// stream.  Append() whatever arrived; Next() yields complete payloads in
/// order, nullopt when more bytes are needed.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, std::size_t size) {
    buffer_.append(data, size);
  }

  /// Next complete payload, or nullopt when the buffer holds only a
  /// partial frame.  Throws FrameError on a zero or over-cap length
  /// prefix; the decoder is then poisoned (the stream cannot be trusted).
  std::optional<std::string> Next();

  /// Bytes buffered but not yet returned (partial frame).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

}  // namespace cdd::serve::net

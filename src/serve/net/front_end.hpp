#pragma once
/// \file front_end.hpp
/// \brief Socket front-end of the SolverService (Linux epoll).
///
/// One event-loop thread owns all socket I/O: it accepts keep-alive TCP
/// connections, decodes length-prefixed frames (frame.hpp), parses each
/// request (wire.hpp) and hands it to SolverService::Submit with a
/// completion callback.  The callback — invoked on whichever worker
/// thread finished the solve — never touches the socket; it appends the
/// encoded response to the connection's outbox and wakes the loop through
/// an eventfd, so every byte on the wire is written by the loop thread.
///
/// The front-end adds no policy of its own: admission control, single-
/// flight coalescing, priorities and shedding all happen inside the
/// service, identically for socket and in-process callers — which is what
/// keeps a golden manifest recorded in-process bit-identical when
/// replayed through a socket.
///
/// Overload surfaces per layer:
///  * connection cap (max_conns): excess accepts are closed immediately,
///    counted in `net_rejected_max_conns`;
///  * per-frame errors: a malformed request gets an error response and the
///    connection stays up; broken *framing* closes it (cannot resync);
///  * service-level rejections travel back as ordinary responses
///    (rejected_queue_full, shed_overload, ...) for the client to retry
///    or give up on.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "serve/net/frame.hpp"
#include "serve/service.hpp"

namespace cdd::serve::net {

/// Listener sizing.
struct FrontEndConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  std::uint16_t port = 0;
  /// Connection cap; accepts beyond it are closed on the spot.
  std::size_t max_conns = 256;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// The socket listener.  Construction binds, listens and starts the event
/// loop; destruction (or Stop()) closes every connection and joins.
/// Responses of solves still in flight at Stop() are dropped — their
/// futures inside the service resolve regardless.
class FrontEnd {
 public:
  /// Throws std::system_error when the socket cannot be bound.
  FrontEnd(FrontEndConfig config, SolverService& service);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Bound port (the ephemeral one when config.port was 0).
  std::uint16_t port() const { return port_; }

  /// Open connections right now.
  std::size_t connections() const;

  /// Idempotent.
  void Stop();

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    std::mutex mutex;       ///< guards outbox (loop thread vs. callbacks)
    std::string outbox;     ///< encoded frames not yet written
    bool broken = false;    ///< framing error: close once outbox drains

    explicit Conn(std::size_t max_frame_bytes)
        : decoder(max_frame_bytes) {}
  };

  /// Callback anchor: completion callbacks hold the shared_ptr and check
  /// `owner` under the mutex, so a worker finishing after Stop() finds a
  /// null owner instead of a dangling front-end.
  struct Anchor {
    std::mutex mutex;
    FrontEnd* owner = nullptr;
  };

  void Loop();
  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn,
                   const std::string& payload);
  /// Appends one encoded frame to the outbox and wakes the loop (any
  /// thread).
  void QueueReply(const std::shared_ptr<Conn>& conn, std::string frame);
  /// Writes as much outbox as the socket accepts; arms EPOLLOUT for the
  /// rest.  Loop thread only.
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(int fd);
  void Wake();

  FrontEndConfig config_;
  SolverService& service_;
  Counter* accepted_;
  Counter* rejected_max_conns_;
  Counter* frames_in_;
  Counter* frames_out_;
  Counter* protocol_errors_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::shared_ptr<Anchor> anchor_;
  mutable std::mutex conns_mutex_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;  // started last, joined first
};

}  // namespace cdd::serve::net

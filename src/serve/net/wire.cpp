#include "serve/net/wire.hpp"

#include <iomanip>
#include <sstream>
#include <utility>

#include "trace/json.hpp"
#include "trace/manifest.hpp"

namespace cdd::serve::net {

namespace {

using trace::JsonError;
using trace::JsonEscape;
using trace::JsonValue;

template <typename T>
void WriteIntArray(std::ostringstream& out, const char* key,
                   const std::vector<T>& values) {
  out << "\"" << key << "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    out << values[i];
  }
  out << "]";
}

/// Optional integer member with a typed default; throws through AsInt on
/// a mistyped value instead of silently substituting the default.
std::int64_t IntOr(const JsonValue& object, const std::string& key,
                   std::int64_t fallback) {
  const JsonValue* member = object.Find(key);
  return member == nullptr ? fallback : member->AsInt();
}

}  // namespace

std::string WriteRequest(const SolveRequest& request) {
  std::ostringstream out;
  out << "{\"op\":\"solve\",\"id\":" << request.id << ",\"engine\":\""
      << JsonEscape(request.engine) << "\",\"instance\":";
  trace::WriteInstanceJson(out, request.instance);
  out << ",\"options\":{\"generations\":" << request.options.generations
      << ",\"seed\":" << request.options.seed
      << ",\"ensemble\":" << request.options.ensemble
      << ",\"block\":" << request.options.block
      << ",\"chains\":" << request.options.chains
      << ",\"trajectory_stride\":" << request.options.trajectory_stride
      << ",\"vshape_init\":"
      << (request.options.vshape_init ? "true" : "false");
  if (!request.options.portfolio.empty()) {
    out << ",\"portfolio\":\"" << JsonEscape(request.options.portfolio)
        << "\"";
  }
  if (request.options.race_slice != 0) {
    out << ",\"race_slice\":" << request.options.race_slice;
  }
  out << "},\"deadline_ms\":" << request.deadline.count()
      << ",\"priority\":" << request.priority << ",\"tenant\":\""
      << JsonEscape(request.tenant) << "\"}";
  return out.str();
}

SolveRequest ParseRequest(std::string_view payload) {
  JsonValue root = [&] {
    try {
      return JsonValue::Parse(payload);
    } catch (const JsonError& e) {
      throw WireError(std::string("request is not valid JSON: ") +
                      e.what());
    }
  }();

  try {
    if (const std::string& op = root.At("op").AsString(); op != "solve") {
      throw WireError("unknown op '" + op + "'");
    }
    SolveRequest request;
    request.id = static_cast<std::uint64_t>(root.At("id").AsInt());
    request.engine = root.At("engine").AsString();
    request.instance = trace::ParseInstanceJson(root.At("instance"));
    if (const JsonValue* options = root.Find("options")) {
      EngineOptions& opt = request.options;
      opt.generations = static_cast<std::uint64_t>(
          IntOr(*options, "generations",
                static_cast<std::int64_t>(opt.generations)));
      opt.seed = static_cast<std::uint64_t>(
          IntOr(*options, "seed", static_cast<std::int64_t>(opt.seed)));
      opt.ensemble =
          static_cast<std::uint32_t>(IntOr(*options, "ensemble",
                                           opt.ensemble));
      opt.block =
          static_cast<std::uint32_t>(IntOr(*options, "block", opt.block));
      opt.chains =
          static_cast<std::uint32_t>(IntOr(*options, "chains", opt.chains));
      opt.trajectory_stride = static_cast<std::uint32_t>(
          IntOr(*options, "trajectory_stride", opt.trajectory_stride));
      if (const JsonValue* vshape = options->Find("vshape_init")) {
        opt.vshape_init = vshape->AsBool();
      }
      if (const JsonValue* portfolio = options->Find("portfolio")) {
        opt.portfolio = portfolio->AsString();
      }
      opt.race_slice = static_cast<std::uint64_t>(
          IntOr(*options, "race_slice",
                static_cast<std::int64_t>(opt.race_slice)));
    }
    request.deadline =
        std::chrono::milliseconds(IntOr(root, "deadline_ms", 0));
    request.priority = static_cast<int>(IntOr(root, "priority", 0));
    if (const JsonValue* tenant = root.Find("tenant")) {
      request.tenant = tenant->AsString();
    }
    return request;
  } catch (const JsonError& e) {
    throw WireError(std::string("request field error: ") + e.what());
  } catch (const trace::ManifestError& e) {
    throw WireError(std::string("request instance error: ") + e.what());
  }
}

std::string WriteResponse(const SolveResponse& response) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "{\"id\":" << response.id << ",\"status\":\""
      << ToString(response.status)
      << "\",\"best_cost\":" << response.result.best_cost << ",";
  WriteIntArray(out, "best", response.result.best);
  out << ",\"evaluations\":" << response.result.evaluations
      << ",\"stopped\":" << (response.result.stopped ? "true" : "false")
      << ",\"device_seconds\":" << response.device_seconds
      << ",\"queue_ms\":" << response.queue_ms
      << ",\"solve_ms\":" << response.solve_ms
      << ",\"from_cache\":" << (response.from_cache ? "true" : "false")
      << ",\"coalesced\":" << (response.coalesced ? "true" : "false");
  // Multi-machine solves carry the machine-assignment splits of the best
  // candidate; single-machine responses omit the field, keeping their
  // payloads byte-identical to the pre-parallel-machine wire format.
  if (!response.result.best_splits.empty()) {
    out << ",";
    WriteIntArray(out, "best_splits", response.result.best_splits);
  }
  if (!response.result.trajectory.empty()) {
    out << ",";
    WriteIntArray(out, "trajectory", response.result.trajectory);
  }
  if (!response.error.empty()) {
    out << ",\"error\":\"" << JsonEscape(response.error) << "\"";
  }
  out << "}";
  return out.str();
}

SolveResponse ParseResponse(std::string_view payload) {
  JsonValue root = [&] {
    try {
      return JsonValue::Parse(payload);
    } catch (const JsonError& e) {
      throw WireError(std::string("response is not valid JSON: ") +
                      e.what());
    }
  }();

  try {
    SolveResponse response;
    response.id = static_cast<std::uint64_t>(root.At("id").AsInt());
    const std::string& status_name = root.At("status").AsString();
    const auto status = SolveStatusFromName(status_name);
    if (!status) {
      throw WireError("unknown status '" + status_name + "'");
    }
    response.status = *status;
    response.result.best_cost = root.At("best_cost").AsInt();
    response.result.best.clear();
    for (const JsonValue& job : root.At("best").AsArray()) {
      response.result.best.push_back(static_cast<JobId>(job.AsInt()));
    }
    response.result.evaluations =
        static_cast<std::uint64_t>(root.At("evaluations").AsInt());
    response.result.stopped = root.At("stopped").AsBool();
    response.device_seconds = root.At("device_seconds").AsDouble();
    response.queue_ms = root.At("queue_ms").AsDouble();
    response.solve_ms = root.At("solve_ms").AsDouble();
    response.from_cache = root.At("from_cache").AsBool();
    response.coalesced = root.At("coalesced").AsBool();
    if (const JsonValue* splits = root.Find("best_splits")) {
      for (const JsonValue& split : splits->AsArray()) {
        response.result.best_splits.push_back(
            static_cast<std::int32_t>(split.AsInt()));
      }
    }
    if (const JsonValue* trajectory = root.Find("trajectory")) {
      for (const JsonValue& cost : trajectory->AsArray()) {
        response.result.trajectory.push_back(
            static_cast<Cost>(cost.AsInt()));
      }
    }
    if (const JsonValue* error = root.Find("error")) {
      response.error = error->AsString();
    }
    return response;
  } catch (const JsonError& e) {
    throw WireError(std::string("response field error: ") + e.what());
  }
}

std::string WriteErrorResponse(std::uint64_t id, std::string_view error) {
  SolveResponse response;
  response.id = id;
  response.status = SolveStatus::kFailed;
  response.error = std::string(error);
  response.result.best_cost = 0;
  return WriteResponse(response);
}

}  // namespace cdd::serve::net

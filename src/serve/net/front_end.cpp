#include "serve/net/front_end.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>
#include <vector>

#include "serve/net/wire.hpp"

namespace cdd::serve::net {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

FrontEnd::FrontEnd(FrontEndConfig config, SolverService& service)
    : config_(std::move(config)),
      service_(service),
      accepted_(&service.metrics().counter("net_accepted")),
      rejected_max_conns_(
          &service.metrics().counter("net_rejected_max_conns")),
      frames_in_(&service.metrics().counter("net_frames_in")),
      frames_out_(&service.metrics().counter("net_frames_out")),
      protocol_errors_(&service.metrics().counter("net_protocol_errors")) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    CloseIfOpen(listen_fd_);
    throw std::system_error(
        std::make_error_code(std::errc::invalid_argument),
        "front-end host is not an IPv4 address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    CloseIfOpen(listen_fd_);
    errno = saved;
    ThrowErrno("bind/listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    const int saved = errno;
    CloseIfOpen(listen_fd_);
    errno = saved;
    ThrowErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const int saved = errno;
    CloseIfOpen(listen_fd_);
    CloseIfOpen(epoll_fd_);
    CloseIfOpen(wake_fd_);
    errno = saved;
    ThrowErrno("epoll_create1/eventfd");
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);

  anchor_ = std::make_shared<Anchor>();
  anchor_->owner = this;
  thread_ = std::thread([this] { Loop(); });
}

FrontEnd::~FrontEnd() { Stop(); }

std::size_t FrontEnd::connections() const {
  const std::scoped_lock lock(conns_mutex_);
  return conns_.size();
}

void FrontEnd::Stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  {
    // From here on, completion callbacks find no owner and drop their
    // responses; the futures inside the service resolve regardless.
    const std::scoped_lock lock(anchor_->mutex);
    anchor_->owner = nullptr;
  }
  Wake();
  if (thread_.joinable()) thread_.join();
  {
    const std::scoped_lock lock(conns_mutex_);
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
  }
  CloseIfOpen(listen_fd_);
  CloseIfOpen(epoll_fd_);
  CloseIfOpen(wake_fd_);
}

void FrontEnd::Wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto written =
      ::write(wake_fd_, &one, sizeof(one));
}

void FrontEnd::Loop() {
  std::vector<epoll_event> events(64);
  while (!stopping_.load()) {
    const int ready =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), /*timeout=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready && !stopping_.load(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const auto got =
            ::read(wake_fd_, &drained, sizeof(drained));
        // A wake means some outbox gained bytes; flush everything that
        // has any (connection counts are small, a sweep is cheap).
        std::vector<std::shared_ptr<Conn>> snapshot;
        {
          const std::scoped_lock lock(conns_mutex_);
          snapshot.reserve(conns_.size());
          for (auto& [cfd, conn] : conns_) snapshot.push_back(conn);
        }
        for (const auto& conn : snapshot) FlushConn(conn);
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        const std::scoped_lock lock(conns_mutex_);
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed earlier in this batch
        conn = it->second;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(fd);
        continue;
      }
      if (events[i].events & EPOLLIN) ReadReady(conn);
      if (events[i].events & EPOLLOUT) FlushConn(conn);
    }
  }
}

void FrontEnd::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error: try later
    bool over_cap = false;
    {
      const std::scoped_lock lock(conns_mutex_);
      over_cap = conns_.size() >= config_.max_conns;
    }
    if (over_cap) {
      rejected_max_conns_->Increment();
      ::close(fd);
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto conn = std::make_shared<Conn>(config_.max_frame_bytes);
    conn->fd = fd;
    {
      const std::scoped_lock lock(conns_mutex_);
      conns_.emplace(fd, conn);
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    accepted_->Increment();
  }
}

void FrontEnd::ReadReady(const std::shared_ptr<Conn>& conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t got = ::read(conn->fd, buffer, sizeof(buffer));
    if (got == 0) {
      CloseConn(conn->fd);  // orderly peer close
      return;
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(conn->fd);
      return;
    }
    conn->decoder.Append(buffer, static_cast<std::size_t>(got));
    try {
      while (auto payload = conn->decoder.Next()) {
        HandleFrame(conn, *payload);
      }
    } catch (const FrameError& e) {
      // Broken framing cannot be resynchronized: answer once, then close
      // after the outbox drains.
      protocol_errors_->Increment();
      QueueReply(conn, EncodeFrame(WriteErrorResponse(0, e.what())));
      {
        const std::scoped_lock lock(conn->mutex);
        conn->broken = true;
      }
      return;
    }
  }
}

void FrontEnd::HandleFrame(const std::shared_ptr<Conn>& conn,
                           const std::string& payload) {
  frames_in_->Increment();
  SolveRequest request;
  try {
    request = ParseRequest(payload);
  } catch (const WireError& e) {
    // A per-frame defect: the stream is still framed correctly, so the
    // connection survives — only this request is answered with an error.
    protocol_errors_->Increment();
    QueueReply(conn, EncodeFrame(WriteErrorResponse(0, e.what())));
    return;
  }
  const std::shared_ptr<Anchor> anchor = anchor_;
  const std::weak_ptr<Conn> weak = conn;
  service_.Submit(
      std::move(request),
      [anchor, weak](const SolveResponse& response) {
        const std::scoped_lock lock(anchor->mutex);
        if (anchor->owner == nullptr) return;  // front-end stopped
        if (const std::shared_ptr<Conn> live = weak.lock()) {
          anchor->owner->QueueReply(
              live, EncodeFrame(WriteResponse(response)));
        }
      });
}

void FrontEnd::QueueReply(const std::shared_ptr<Conn>& conn,
                          std::string frame) {
  {
    const std::scoped_lock lock(conn->mutex);
    conn->outbox += frame;
  }
  frames_out_->Increment();
  Wake();
}

void FrontEnd::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    const std::scoped_lock lock(conn->mutex);
    while (!conn->outbox.empty()) {
      const ssize_t wrote =
          ::write(conn->fd, conn->outbox.data(), conn->outbox.size());
      if (wrote > 0) {
        conn->outbox.erase(0, static_cast<std::size_t>(wrote));
        continue;
      }
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        epoll_event event{};
        event.events = EPOLLIN | EPOLLOUT;
        event.data.fd = conn->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event);
        return;
      }
      if (wrote < 0 && errno == EINTR) continue;
      close_now = true;  // peer went away mid-write
      break;
    }
    if (!close_now) {
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = conn->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event);
      close_now = conn->broken;  // error frame delivered; now hang up
    }
  }
  if (close_now) CloseConn(conn->fd);
}

void FrontEnd::CloseConn(int fd) {
  std::shared_ptr<Conn> conn;
  {
    const std::scoped_lock lock(conns_mutex_);
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conn->fd = -1;
}

}  // namespace cdd::serve::net

#pragma once
/// \file client.hpp
/// \brief Minimal blocking client of the serve wire protocol.
///
/// One TCP connection, used synchronously: Call() writes a request frame
/// and blocks for the response frame.  The Send/Receive split exists for
/// callers that pipeline several requests on the keep-alive connection
/// (responses are then matched by id — the server may complete them out
/// of order).  This is the client the tools, the load generator and the
/// tests use; production callers with an event loop should speak the
/// (deliberately tiny) protocol directly.

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/net/frame.hpp"
#include "serve/request.hpp"

namespace cdd::serve::net {

/// Connection-level failure: connect/read/write errors, or a peer that
/// closed mid-frame.
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BlockingClient {
 public:
  /// Connects immediately; throws ClientError when the server is not
  /// reachable.
  BlockingClient(const std::string& host, std::uint16_t port,
                 std::size_t max_frame_bytes = kDefaultMaxFrameBytes);
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// One synchronous round-trip.
  SolveResponse Call(const SolveRequest& request);

  /// Pipelining seam: write one request frame without waiting.
  void Send(const SolveRequest& request);

  /// Blocks for the next response frame on the connection.
  SolveResponse Receive();

  /// Test seam: raw bytes on the wire, bypassing framing and wire
  /// serialization (malformed-input tests).
  void SendRaw(std::string_view bytes);

  /// Test seam: next frame payload as-is, without response parsing.
  std::string ReceiveFramePayload();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace cdd::serve::net

#include "serve/net/frame.hpp"

#include <cstring>

namespace cdd::serve::net {

std::string EncodeFrame(std::string_view payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

std::optional<std::string> FrameDecoder::Next() {
  if (buffer_.size() < 4) return std::nullopt;
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length =
      (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
  if (length == 0) {
    throw FrameError("zero-length frame");
  }
  if (length > max_frame_bytes_) {
    throw FrameError("frame of " + std::to_string(length) +
                     " bytes exceeds the " +
                     std::to_string(max_frame_bytes_) + "-byte cap");
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
    return std::nullopt;
  }
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  return payload;
}

}  // namespace cdd::serve::net

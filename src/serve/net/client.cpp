#include "serve/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/net/wire.hpp"

namespace cdd::serve::net {

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port,
                               std::size_t max_frame_bytes)
    : decoder_(max_frame_bytes) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw ClientError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw ClientError("host is not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ClientError("connect " + host + ":" + std::to_string(port) +
                      ": " + detail);
  }
  const int enable = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

SolveResponse BlockingClient::Call(const SolveRequest& request) {
  Send(request);
  return Receive();
}

void BlockingClient::Send(const SolveRequest& request) {
  SendRaw(EncodeFrame(WriteRequest(request)));
}

void BlockingClient::SendRaw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote =
        ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

SolveResponse BlockingClient::Receive() {
  return ParseResponse(ReceiveFramePayload());
}

std::string BlockingClient::ReceiveFramePayload() {
  for (;;) {
    if (auto payload = decoder_.Next()) return *payload;
    char buffer[64 * 1024];
    const ssize_t got = ::read(fd_, buffer, sizeof(buffer));
    if (got == 0) {
      throw ClientError("connection closed by server");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("read: ") + std::strerror(errno));
    }
    decoder_.Append(buffer, static_cast<std::size_t>(got));
  }
}

}  // namespace cdd::serve::net

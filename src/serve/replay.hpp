#pragma once
/// \file replay.hpp
/// \brief Record/replay bridge between run manifests and the engine table.
///
/// Recording: MakeManifestRecord() snapshots a finished solve (instance,
/// engine, result-determining options, outcome) into a trace::ManifestRecord
/// — the SolverService appends one per completed request when configured,
/// and cdd_solve does the same under --manifest.
///
/// Replay: ReplayRecord() re-executes a manifest through the same
/// EngineRegistry the service uses and demands a *bit-identical* outcome —
/// equal best_cost, equal evaluation count, equal trajectory digest.  Any
/// drift (a changed kernel, a perturbed RNG stream, a tampered manifest)
/// is a hard failure, which turns the determinism invariant of PR 1 into
/// an executable regression check (tools/sched_replay, CI golden run).

#include <cstddef>
#include <iosfwd>
#include <string>

#include "core/types.hpp"
#include "meta/result.hpp"
#include "serve/engine_registry.hpp"
#include "trace/manifest.hpp"

namespace cdd::serve {

/// Builds the manifest record of one finished (unstopped) solve.
trace::ManifestRecord MakeManifestRecord(const Instance& instance,
                                         const std::string& engine,
                                         const EngineOptions& options,
                                         const meta::RunResult& result);

/// The engine-facing view of a manifest's recorded options.
EngineOptions OptionsFromManifest(const trace::ManifestOptions& options);

/// Outcome of replaying one manifest record.
struct ReplayOutcome {
  bool ok = false;
  std::string error;  ///< first check that failed, empty when ok
  std::string engine;
  std::size_t jobs = 0;
  Cost recorded_cost = 0;
  Cost replayed_cost = 0;
  std::uint64_t recorded_evaluations = 0;
  std::uint64_t replayed_evaluations = 0;
};

/// Re-executes \p record and verifies the outcome bit-for-bit.  Integrity
/// failures (hash mismatch), unknown engines, engine errors and result
/// mismatches all come back as ok=false with a message — replay never
/// throws on bad data, so one corrupt line cannot abort a whole file.
ReplayOutcome ReplayRecord(
    const trace::ManifestRecord& record,
    const EngineRegistry& registry = EngineRegistry::Default());

/// Aggregate of a JSONL manifest stream replay.
struct ReplaySummary {
  std::size_t total = 0;   ///< non-empty lines seen
  std::size_t passed = 0;  ///< replays that reproduced exactly
  std::size_t failed = 0;  ///< parse errors + integrity/mismatch failures

  bool all_ok() const { return failed == 0 && total > 0; }
};

/// Replays every line of \p in (JSONL; blank lines skipped), writing one
/// verdict line per record to \p log.
ReplaySummary ReplayStream(
    std::istream& in, std::ostream& log,
    const EngineRegistry& registry = EngineRegistry::Default());

}  // namespace cdd::serve

#include "serve/service.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "serve/replay.hpp"
#include "trace/manifest.hpp"
#include "trace/tracer.hpp"

namespace cdd::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Parses "low:high" (absolute queue depths) from CDD_SERVE_WATERMARKS.
/// Malformed text leaves both outputs untouched — admission control stays
/// off, matching how the other CDD_* environment overrides degrade.
void ParseWatermarks(const char* text, std::size_t* low, std::size_t* high) {
  if (text == nullptr) return;
  char* end = nullptr;
  const unsigned long long parsed_low = std::strtoull(text, &end, 10);
  if (end == text || *end != ':') return;
  const char* rest = end + 1;
  const unsigned long long parsed_high = std::strtoull(rest, &end, 10);
  if (end == rest || *end != '\0' || parsed_high == 0) return;
  *low = static_cast<std::size_t>(parsed_low);
  *high = static_cast<std::size_t>(parsed_high);
}

core::PoolAllocator* ResolvePoolAllocator(const ServiceConfig& config) {
  if (config.pool_allocator != nullptr) return config.pool_allocator;
  core::PoolBackend backend = core::ActivePoolBackend();
  if (!config.pool_backend.empty()) {
    // Unknown names keep the environment/default resolution, matching how
    // CDD_POOL_BACKEND itself degrades.
    core::ParsePoolBackend(config.pool_backend, &backend);
  }
  return &core::PoolAllocatorFor(backend);
}

sim::exec::ExecBackend ResolveExecBackend(const ServiceConfig& config,
                                          Counter* clamped) {
  using sim::exec::ExecBackend;
  if (!config.exec_backend.empty()) {
    // Unknown names keep the environment/default resolution, matching how
    // CDD_EXEC_BACKEND itself degrades.
    ExecBackend backend = sim::exec::ActiveExecBackend();
    sim::exec::ParseExecBackend(config.exec_backend, &backend);
    return backend;
  }
  ExecBackend backend = sim::exec::ActiveExecBackend();
  const unsigned workers = config.workers == 0 ? 1u : config.workers;
  if (backend == ExecBackend::kHostParallel && workers > 1 &&
      workers >= sim::exec::ActiveExecWorkers()) {
    // Oversubscription guard: this service's worker pool alone already
    // covers the machine, so fanning every request's blocks out over the
    // shared exec pool would only make sibling requests contend for the
    // same cores.  Results are backend-invariant, so clamping the
    // env-derived default to serial is free; an explicit
    // ServiceConfig::exec_backend is honored above without clamping.
    clamped->Increment();
    backend = ExecBackend::kSerial;
  }
  return backend;
}

}  // namespace

SolverService::SolverService(ServiceConfig config,
                             const EngineRegistry& registry)
    : config_(config),
      registry_(registry),
      cache_(config.cache_capacity, config.cache_shards),
      submitted_(&metrics_.counter("submitted")),
      enqueued_(&metrics_.counter("enqueued")),
      rejected_queue_full_(&metrics_.counter("rejected_queue_full")),
      rejected_shutdown_(&metrics_.counter("rejected_shutdown")),
      rejected_unknown_engine_(
          &metrics_.counter("rejected_unknown_engine")),
      rejected_invalid_instance_(
          &metrics_.counter("rejected_invalid_instance")),
      rejected_deadline_infeasible_(
          &metrics_.counter("rejected_deadline_infeasible")),
      shed_overload_(&metrics_.counter("shed_overload")),
      shed_tenant_overquota_(&metrics_.counter("shed_tenant_overquota")),
      coalesced_joins_(&metrics_.counter("coalesced_joins")),
      coalesce_reelected_(&metrics_.counter("coalesce_reelected")),
      preempt_depth_limited_(&metrics_.counter("preempt_depth_limited")),
      cache_hits_(&metrics_.counter("cache_hits")),
      completed_(&metrics_.counter("completed")),
      deadline_expired_(&metrics_.counter("deadline_expired")),
      cancelled_(&metrics_.counter("cancelled")),
      failed_(&metrics_.counter("failed")),
      pool_handoffs_(&metrics_.counter("pool_handoffs")),
      pool_staging_copies_(&metrics_.counter("pool_staging_copies")),
      pool_alloc_fallbacks_(&metrics_.counter("pool_alloc_fallbacks")),
      pool_reuse_hits_(&metrics_.counter("pool_reuse_hits")),
      exec_clamped_(&metrics_.counter("exec_clamped")),
      preemptions_(&metrics_.counter("preemptions")),
      queue_ms_(&metrics_.histogram("queue_ms")),
      solve_ms_(&metrics_.histogram("solve_ms")),
      pool_allocator_(ResolvePoolAllocator(config)),
      exec_backend_(ResolveExecBackend(config, exec_clamped_)),
      queue_(config.queue_capacity) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.shed_low_watermark == 0 && config_.shed_high_watermark == 0) {
    ParseWatermarks(std::getenv("CDD_SERVE_WATERMARKS"),
                    &config_.shed_low_watermark,
                    &config_.shed_high_watermark);
  }
  config_.shed_high_watermark =
      std::min(config_.shed_high_watermark, queue_.capacity());
  config_.shed_low_watermark =
      std::min(config_.shed_low_watermark, config_.shed_high_watermark);
  if (!config_.manifest_path.empty()) {
    manifest_.open(config_.manifest_path, std::ios::app);
  }
  slot_stops_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    slot_stops_.push_back(std::make_unique<StopSource>());
  }
  pool_ = std::make_unique<WorkerPool<Job>>(
      queue_, config_.workers,
      [this](Job&& job, unsigned slot) { Process(std::move(job), slot); });
}

SolverService::~SolverService() { Shutdown(); }

std::future<SolveResponse> SolverService::Submit(SolveRequest request,
                                                 ResponseCallback on_done) {
  CDD_TRACE_SPAN("serve.submit");
  submitted_->Increment();

  SolveResponse response;
  response.id = request.id;

  // Synchronous answers (rejections, cache hits) go through the same
  // callback-then-promise funnel as worker-side deliveries.
  const auto answer = [&](SolveResponse&& done_response) {
    if (on_done) {
      try {
        on_done(done_response);
      } catch (...) {
      }
    }
    std::promise<SolveResponse> done;
    done.set_value(std::move(done_response));
    return done.get_future();
  };

  const EngineFn* engine = registry_.Find(request.engine);
  if (engine == nullptr) {
    rejected_unknown_engine_->Increment();
    response.status = SolveStatus::kRejectedUnknownEngine;
    response.error = "unknown engine '" + request.engine + "'";
    return answer(std::move(response));
  }

  // Evaluator preconditions are enforced at the boundary: an engine run
  // on a violating instance would either throw deep inside a worker or,
  // worse, return a cost computed under a violated precondition.
  if (std::string diagnostic = ValidateRequestInstance(request.instance);
      !diagnostic.empty()) {
    rejected_invalid_instance_->Increment();
    CDD_TRACE_INSTANT("serve.rejected_invalid_instance");
    response.status = SolveStatus::kRejectedInvalidInstance;
    response.error = std::move(diagnostic);
    return answer(std::move(response));
  }

  // Variant support is an admission decision too: an engine without the
  // multi-machine / early-work move set must reject here, not throw deep
  // inside a worker.
  if (std::string diagnostic =
          EngineSupportDiagnostic(request.engine, request.instance);
      !diagnostic.empty()) {
    rejected_invalid_instance_->Increment();
    CDD_TRACE_INSTANT("serve.rejected_invalid_instance");
    response.status = SolveStatus::kRejectedInvalidInstance;
    response.error = std::move(diagnostic);
    return answer(std::move(response));
  }

  // Race requests bake the effective (env-pinned) contender list into
  // the options here, so the cache key, the run and the manifest record
  // all agree — and the record stays replayable without the variable.
  if (request.engine == "race") {
    MaterializeRacePortfolio(request.options);
  }

  const std::uint64_t key = CacheKey(request);

  // Fast path: an identical finished request is served synchronously, no
  // queue slot consumed.  The hit shares the cached entry; only the
  // response's own copy is made, outside any shard mutex.
  if (auto hit = cache_.Get(key)) {
    cache_hits_->Increment();
    CDD_TRACE_INSTANT("serve.cache_hit");
    response.status = SolveStatus::kCacheHit;
    response.result = hit->result;
    response.device_seconds = hit->device_seconds;
    response.from_cache = true;
    return answer(std::move(response));
  }

  // Single-flight: if an identical request is already queued or solving,
  // attach to it instead of consuming a queue slot on a duplicate solve.
  InflightWaiter waiter;
  waiter.request = std::move(request);
  waiter.admitted = Clock::now();
  waiter.on_done = std::move(on_done);
  std::future<SolveResponse> future = waiter.promise.get_future();
  if (inflight_.JoinOrLead(key, &waiter)) {
    coalesced_joins_->Increment();
    CDD_TRACE_INSTANT("serve.coalesce_join");
    return future;
  }

  // This request is the flight's leader; from here on, every exit path
  // must resolve the flight (success or failure) or hand the job to the
  // queue, whose consumer does.
  Job job;
  job.request = std::move(waiter.request);
  job.engine = engine;
  job.factory = registry_.FindFactory(job.request.engine);
  job.key = key;
  job.admitted = waiter.admitted;
  job.promise = std::move(waiter.promise);
  job.on_done = std::move(waiter.on_done);

  if (config_.shed_high_watermark > 0) {
    const std::size_t depth = queue_.size();
    if (depth >= config_.shed_low_watermark) {
      // Deadline feasibility: if the expected wait behind `depth` queued
      // solves (each taking the historical mean) already spends the
      // request's own budget, admitting it would only let it expire in
      // the queue — reject it now, while the caller can still retry
      // elsewhere.  No history (mean 0) admits: never reject on a guess.
      const double mean = solve_ms_->mean_ms();
      const double deadline_ms =
          static_cast<double>(job.request.deadline.count());
      if (deadline_ms > 0 && mean > 0) {
        const double predicted_wait = mean * static_cast<double>(depth) /
                                      static_cast<double>(config_.workers);
        if (predicted_wait + mean > deadline_ms) {
          rejected_deadline_infeasible_->Increment();
          CDD_TRACE_INSTANT("serve.rejected_deadline_infeasible");
          response.status = SolveStatus::kRejectedDeadlineInfeasible;
          response.error = "predicted wait exceeds deadline";
          Deliver(job, std::move(response));
          ResolveInflightFailure(key);
          return future;
        }
      }
      // Fair share: with multiple active tenants, one whose queued
      // requests already fill its slice of the queue is shed before it
      // can starve the rest.  Single-tenant deployments never trip this.
      std::size_t active = 0;
      std::size_t mine = 0;
      {
        const std::scoped_lock lock(tenant_mutex_);
        active = tenant_queued_.size();
        const auto it = tenant_queued_.find(job.request.tenant);
        if (it == tenant_queued_.end()) {
          ++active;  // this request would make the tenant active
        } else {
          mine = it->second;
        }
      }
      if (active > 1 &&
          mine >= std::max<std::size_t>(queue_.capacity() / active, 1)) {
        shed_tenant_overquota_->Increment();
        shed_overload_->Increment();
        CDD_TRACE_INSTANT("serve.shed_tenant_overquota");
        response.status = SolveStatus::kShedOverload;
        response.error = "tenant over fair share";
        Deliver(job, std::move(response));
        ResolveInflightFailure(key);
        return future;
      }
    }
    if (depth >= config_.shed_high_watermark) {
      // Overload: make room by displacing strictly-lower-priority queued
      // work, or — when this arrival is itself the lowest — shed it.
      if (auto victim = queue_.TryEvictLowest(job.request.priority)) {
        ShedQueuedJob(std::move(*victim));
      } else {
        shed_overload_->Increment();
        CDD_TRACE_INSTANT("serve.shed_overload");
        response.status = SolveStatus::kShedOverload;
        Deliver(job, std::move(response));
        ResolveInflightFailure(key);
        return future;
      }
    }
  }

  const int priority = job.request.priority;
  const std::string tenant = job.request.tenant;
  switch (queue_.TryPush(std::move(job), priority)) {
    case PushResult::kOk:
      // TryPush moved the job; only the pre-saved tenant tag is needed.
      TenantEnqueued(tenant);
      enqueued_->Increment();
      CDD_TRACE_INSTANT("serve.enqueued");
      return future;
    case PushResult::kClosed:
      rejected_shutdown_->Increment();
      CDD_TRACE_INSTANT("serve.rejected_shutting_down");
      response.status = SolveStatus::kShuttingDown;
      break;
    case PushResult::kFull:
      rejected_queue_full_->Increment();
      CDD_TRACE_INSTANT("serve.rejected_queue_full");
      response.status = SolveStatus::kRejectedQueueFull;
      break;
  }
  // Refused push: the job (and its promise, already tied to `future`) is
  // still ours to answer, and the flight must not strand any waiter that
  // joined in the meantime.
  Deliver(job, std::move(response));
  ResolveInflightFailure(key);
  return future;
}

void SolverService::Process(Job&& job, unsigned slot, unsigned depth) {
  CDD_TRACE_SPAN("serve.process");
  const Clock::time_point dequeued = Clock::now();
  SolveResponse response;
  response.id = job.request.id;
  response.queue_ms = MsSince(job.admitted, dequeued);
  queue_ms_->Record(response.queue_ms);
  TenantDequeued(job.request.tenant);

  if (aborting_.load()) {
    response.status = SolveStatus::kShutdown;
    cancelled_->Increment();
    Deliver(job, std::move(response));
    ResolveInflightFailure(job.key);
    return;
  }

  // A duplicate may have completed while this request waited in the queue.
  if (auto hit = cache_.Get(job.key)) {
    cache_hits_->Increment();
    CDD_TRACE_INSTANT("serve.cache_hit");
    response.status = SolveStatus::kCacheHit;
    response.result = hit->result;
    response.device_seconds = hit->device_seconds;
    response.from_cache = true;
    ResolveInflightSuccess(job.key, response);
    Deliver(job, std::move(response));
    return;
  }

  StopSource& stop = *slot_stops_[slot];
  stop.Reset();
  const bool has_deadline = job.request.deadline.count() > 0;
  if (has_deadline) {
    const Clock::time_point deadline = job.admitted + job.request.deadline;
    if (dequeued >= deadline) {
      // Expired while queued: answer without burning a solve.  Waiters do
      // not inherit the expiry — one is re-elected to run for real.
      deadline_expired_->Increment();
      response.status = SolveStatus::kDeadlineExpired;
      Deliver(job, std::move(response));
      ResolveInflightFailure(job.key);
      return;
    }
    stop.SetDeadline(deadline);
  }
  if (aborting_.load()) stop.RequestStop();

  EngineOptions options = job.request.options;
  options.stop = stop.token();
  options.device = nullptr;  // each call gets a private simulated device
  // Safe because RunHostEnsembleSa is thread-count invariant: the pool
  // already provides the parallelism, each engine call stays serial.
  options.threads = 1;
  // Execution placement for that private device (resolved once in the
  // constructor; backend-invariant results, so this is never hashed).
  options.exec_backend = exec_backend_;

  // One request-scoped candidate pool, placed by the configured allocator
  // and lent zero-copy to engines that stage their generations in it.
  // Host-side placements hand the engine the very rows it perturbs; only
  // a placement on the far side of the modeled bus charges staging copies.
  std::optional<CandidatePool> request_pool;
  const std::size_t pool_rows =
      PoolCapacityHint(job.request.engine, options);
  const auto pool_machines =
      static_cast<std::size_t>(job.request.instance.machines());
  if (pool_rows > 0 && job.request.instance.size() > 0) {
    if (pool_allocator_->backend() == core::PoolBackend::kDevice) {
      // Same-shape reuse: an idle device-resident pool of exactly this
      // shape (n fixes the stride, capacity fixes the block, the machine
      // count fixes the splits sections) skips the device allocation
      // entirely.  Exact capacity match keeps the free-list from pinning
      // oversized blocks to small requests.
      const std::scoped_lock lock(idle_pools_mutex_);
      for (auto it = idle_pools_.begin(); it != idle_pools_.end(); ++it) {
        if (it->n() == job.request.instance.size() &&
            it->capacity() == pool_rows &&
            it->machines() == pool_machines) {
          it->Clear();
          request_pool.emplace(std::move(*it));
          idle_pools_.erase(it);
          pool_reuse_hits_->Increment();
          CDD_TRACE_INSTANT("serve.pool_reuse_hit");
          break;
        }
      }
    }
    if (!request_pool) {
      request_pool.emplace(job.request.instance.size(), pool_rows,
                           *pool_allocator_, pool_machines);
    }
    options.pool = &*request_pool;
    pool_handoffs_->Increment();
    if (request_pool->backend() != pool_allocator_->backend()) {
      // The requested backend could not deliver memory and CandidatePool
      // fell back to plain host pages (layout-identical, so the run's
      // results are unchanged — only the placement degraded).
      pool_alloc_fallbacks_->Increment();
      CDD_TRACE_INSTANT("serve.pool_alloc_fallback");
    }
    // Every borrowing engine runs on the host, so a device-resident pool
    // costs one modeled H2D (rows in) plus one D2H (costs out) per
    // handoff; host/pinned/numa placements are zero-copy.
    if (core::TransferCost(request_pool->backend()).host_staging) {
      pool_staging_copies_->Increment(2);
      CDD_TRACE_INSTANT("serve.pool_stage_h2d");
      CDD_TRACE_INSTANT("serve.pool_stage_d2h");
    }
  }

  const Clock::time_point solve_start = Clock::now();
  try {
    EngineRun run = [&] {
      CDD_TRACE_SPAN("serve.engine");
      if (config_.preempt_slice == 0 || job.factory == nullptr) {
        // One-shot path: no preemption configured (or a legacy EngineFn
        // registration with no resumable construction seam).
        return (*job.engine)(job.request.instance, options);
      }
      // Sliced path: run the engine preempt_slice native units at a time.
      // Between slices the engine sits at a checkpoint boundary, so a
      // higher-priority arrival can be solved *now* on this worker — the
      // paused engine's state just stays live on this stack frame — and
      // the original solve resumes bit-identically afterwards (the
      // split-run guarantee of the resumable-engine contract).
      auto engine = (*job.factory)(job.request.instance, options);
      meta::StepStatus status = engine->Step(0);
      while (status == meta::StepStatus::kRunning) {
        status = engine->Step(config_.preempt_slice);
        if (status != meta::StepStatus::kRunning) break;
        if (queue_.MaxPriority() <= job.request.priority) continue;
        if (depth >= config_.max_preempt_depth) {
          // Higher-priority work is waiting but this worker's stack is at
          // the nesting cap — count it so the starved wait is observable
          // instead of a silent `continue`.
          preempt_depth_limited_->Increment();
          CDD_TRACE_INSTANT("serve.preempt_depth_limited");
          continue;
        }
        if (auto higher = queue_.TryPopAbove(job.request.priority)) {
          preemptions_->Increment();
          CDD_TRACE_INSTANT("serve.preempt_begin");
          Process(std::move(*higher), slot, depth + 1);
          CDD_TRACE_INSTANT("serve.preempt_end");
          // The nested solve re-armed this slot's StopSource for its own
          // deadline; restore ours before resuming.  Cooperative stops
          // requested during the nested run (CancelAll) are re-applied.
          stop.Reset();
          if (has_deadline) {
            stop.SetDeadline(job.admitted + job.request.deadline);
          }
          if (aborting_.load()) stop.RequestStop();
        }
      }
      meta::EngineOutput out = engine->Finish();
      return EngineRun{std::move(out.result), out.device_seconds};
    }();
    response.solve_ms = MsSince(solve_start, Clock::now());
    solve_ms_->Record(response.solve_ms);
    response.device_seconds = run.device_seconds;
    if (run.result.stopped) {
      if (aborting_.load()) {
        response.status = SolveStatus::kShutdown;
        cancelled_->Increment();
      } else {
        response.status = SolveStatus::kDeadlineExpired;
        deadline_expired_->Increment();
      }
      // Truncated searches never enter the cache: a later duplicate must
      // get the full-budget answer, not this one.
    } else {
      response.status = SolveStatus::kOk;
      completed_->Increment();
      // An unpinned race picks its portfolio through the adaptive bandit
      // prior, whose state evolves with every finished race — rerunning
      // the same request later may race different contenders.  Such runs
      // are answered but never cached or manifested: both artifacts
      // promise bit-identical reproduction.
      const bool reproducible = job.request.engine != "race" ||
                                RacePortfolioPinned(job.request.options);
      if (reproducible) {
        cache_.Put(job.key, {run.result, run.device_seconds});
        if (manifest_.is_open()) {
          // Only full-budget runs are recorded: a manifest is a promise
          // of bit-identical replay, which a truncated search cannot
          // make.
          const std::string line = trace::WriteManifestLine(
              MakeManifestRecord(job.request.instance, job.request.engine,
                                 job.request.options, run.result));
          const std::scoped_lock lock(manifest_mutex_);
          manifest_ << line << "\n";
        }
      }
    }
    response.result = std::move(run.result);
  } catch (const std::exception& e) {
    response.solve_ms = MsSince(solve_start, Clock::now());
    response.status = SolveStatus::kFailed;
    response.error = e.what();
    failed_->Increment();
  }
  if (request_pool &&
      request_pool->backend() == core::PoolBackend::kDevice) {
    // The engine is done with the lent pool; park the device block for
    // the next same-shape request.  Bounded so a varied workload cannot
    // hoard device memory; excess pools just release normally.
    const std::scoped_lock lock(idle_pools_mutex_);
    if (idle_pools_.size() < 2 * config_.workers) {
      idle_pools_.push_back(std::move(*request_pool));
    }
  }
  if (response.status == SolveStatus::kOk) {
    // Full-budget result: the cache entry (when reproducible) is already
    // in place, so a duplicate racing with this removal hits the cache
    // instead of finding a dead flight.
    ResolveInflightSuccess(job.key, response);
    Deliver(job, std::move(response));
  } else {
    // Truncated, cancelled or failed: the waiters must not inherit it.
    Deliver(job, std::move(response));
    ResolveInflightFailure(job.key);
  }
}

void SolverService::Deliver(Job& job, SolveResponse&& response) {
  if (job.on_done) {
    try {
      job.on_done(response);
    } catch (...) {
      // A throwing callback must never strand the promise.
    }
  }
  job.promise.set_value(std::move(response));
}

void SolverService::ResolveInflightSuccess(std::uint64_t key,
                                           const SolveResponse& leader) {
  for (InflightWaiter& waiter : inflight_.Complete(key)) {
    SolveResponse response;
    response.id = waiter.request.id;
    response.status = leader.status == SolveStatus::kCacheHit
                          ? SolveStatus::kCacheHit
                          : SolveStatus::kOk;
    response.result = leader.result;
    response.device_seconds = leader.device_seconds;
    response.solve_ms = leader.solve_ms;
    response.queue_ms = MsSince(waiter.admitted, Clock::now());
    response.from_cache = leader.from_cache;
    response.coalesced = true;
    if (waiter.on_done) {
      try {
        waiter.on_done(response);
      } catch (...) {
      }
    }
    waiter.promise.set_value(std::move(response));
  }
}

void SolverService::ResolveInflightFailure(std::uint64_t key) {
  // Promote the oldest waiter to leader and give it a real queue slot; a
  // promoted waiter stranded by a closed or full queue is answered
  // terminally and the next one tried, so the flight always drains.
  while (auto waiter = inflight_.ReElect(key)) {
    Job job;
    job.request = std::move(waiter->request);
    job.engine = registry_.Find(job.request.engine);
    job.factory = registry_.FindFactory(job.request.engine);
    job.key = key;
    job.admitted = waiter->admitted;  // its own deadline clock, not the
                                      // failed leader's
    job.promise = std::move(waiter->promise);
    job.on_done = std::move(waiter->on_done);
    const int priority = job.request.priority;
    const std::string tenant = job.request.tenant;
    switch (queue_.TryPush(std::move(job), priority)) {
      case PushResult::kOk:
        TenantEnqueued(tenant);
        coalesce_reelected_->Increment();
        enqueued_->Increment();
        CDD_TRACE_INSTANT("serve.coalesce_reelect");
        return;
      case PushResult::kClosed: {
        SolveResponse response;
        response.id = job.request.id;
        response.status = SolveStatus::kShutdown;
        cancelled_->Increment();
        Deliver(job, std::move(response));
        continue;
      }
      case PushResult::kFull: {
        SolveResponse response;
        response.id = job.request.id;
        response.status = SolveStatus::kShedOverload;
        shed_overload_->Increment();
        Deliver(job, std::move(response));
        continue;
      }
    }
  }
}

void SolverService::ShedQueuedJob(Job&& victim) {
  TenantDequeued(victim.request.tenant);
  shed_overload_->Increment();
  CDD_TRACE_INSTANT("serve.shed_overload");
  SolveResponse response;
  response.id = victim.request.id;
  response.status = SolveStatus::kShedOverload;
  response.queue_ms = MsSince(victim.admitted, Clock::now());
  Deliver(victim, std::move(response));
  ResolveInflightFailure(victim.key);
}

void SolverService::TenantEnqueued(const std::string& tenant) {
  const std::scoped_lock lock(tenant_mutex_);
  ++tenant_queued_[tenant];
}

void SolverService::TenantDequeued(const std::string& tenant) {
  const std::scoped_lock lock(tenant_mutex_);
  const auto it = tenant_queued_.find(tenant);
  if (it == tenant_queued_.end()) return;
  if (--it->second == 0) tenant_queued_.erase(it);
}

void SolverService::Shutdown() {
  stopped_.store(true);
  queue_.Close();
  pool_->Join();
}

void SolverService::CancelAll() {
  stopped_.store(true);
  aborting_.store(true);
  for (const auto& stop : slot_stops_) stop->RequestStop();
  queue_.Close();
  pool_->Join();
}

}  // namespace cdd::serve

#include "serve/engine_registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "exact/bnb.hpp"
#include "meta/dpso.hpp"
#include "meta/evostrategy.hpp"
#include "meta/host_ensemble.hpp"
#include "meta/objective.hpp"
#include "meta/sa.hpp"
#include "meta/threshold.hpp"
#include "parallel/parallel_dpso.hpp"
#include "parallel/parallel_sa.hpp"
#include "parallel/parallel_sa_sync.hpp"
#include "portfolio/bandit.hpp"
#include "portfolio/race.hpp"

namespace cdd::serve {

namespace {

/// Keeps a private simulated device alive for exactly as long as the
/// engine running on it — the factory path's replacement for the stack
/// device the one-shot adapters used.  Members declare the device first
/// so it is destroyed last (the inner engine's buffers live on it).
class OwningDeviceEngine final : public meta::Engine {
 public:
  OwningDeviceEngine(std::unique_ptr<sim::Device> device,
                     std::unique_ptr<meta::Engine> inner)
      : device_(std::move(device)), inner_(std::move(inner)) {}

  meta::StepStatus Step(std::uint64_t units) override {
    return inner_->Step(units);
  }
  std::uint64_t Remaining() const override { return inner_->Remaining(); }
  Cost BestCost() const override { return inner_->BestCost(); }
  std::unique_ptr<meta::EngineCheckpoint> Checkpoint() const override {
    return inner_->Checkpoint();
  }
  void Restore(const meta::EngineCheckpoint& checkpoint) override {
    inner_->Restore(checkpoint);
  }
  meta::EngineOutput Finish() override { return inner_->Finish(); }

 private:
  std::unique_ptr<sim::Device> device_;
  std::unique_ptr<meta::Engine> inner_;
};

/// Builds \p make's engine on the caller's device or on a private GT 560M
/// that the returned engine then owns.
template <class Fn>
std::unique_ptr<meta::Engine> WithDeviceEngine(const EngineOptions& options,
                                               Fn&& make) {
  if (options.device != nullptr) return make(*options.device);
  auto device = std::make_unique<sim::Device>();  // the paper's GT 560M
  if (options.exec_backend) device->set_exec_backend(*options.exec_backend);
  auto inner = make(*device);
  return std::make_unique<OwningDeviceEngine>(std::move(device),
                                              std::move(inner));
}

std::unique_ptr<meta::Engine> MakeEngineByName(std::string_view name,
                                               const Instance& instance,
                                               const EngineOptions& options);

std::uint64_t EnvRaceSlice() {
  static const std::uint64_t value = [] {
    const char* env = std::getenv("CDD_RACE_SLICE");
    if (env == nullptr) return std::uint64_t{64};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    return (end == env || *end != '\0' || parsed == 0)
               ? std::uint64_t{64}
               : static_cast<std::uint64_t>(parsed);
  }();
  return value;
}

std::vector<std::string> SplitNames(std::string_view csv) {
  std::vector<std::string> names;
  while (!csv.empty()) {
    const std::size_t comma = csv.find(',');
    std::string_view token = csv.substr(0, comma);
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (!token.empty()) names.emplace_back(token);
    if (comma == std::string_view::npos) break;
    csv.remove_prefix(comma + 1);
  }
  return names;
}

/// The contender list of one race: the pinned list when options/env give
/// one, otherwise the bandit prior's top three over the serial engines
/// (cheap enough that racing three never dwarfs one full solo run).
std::vector<std::string> ResolvePortfolio(const Instance& instance,
                                          const EngineOptions& options) {
  std::string csv = options.portfolio;
  if (csv.empty()) {
    if (const char* env = std::getenv("CDD_RACE_PORTFOLIO");
        env != nullptr) {
      csv = env;
    }
  }
  if (!csv.empty()) {
    std::vector<std::string> names = SplitNames(csv);
    if (names.empty()) {
      throw std::invalid_argument("race: empty portfolio '" + csv + "'");
    }
    return names;
  }
  std::vector<std::string> ranked = portfolio::BanditPrior::Global().Rank(
      portfolio::ComputeFeatures(instance), {"sa", "ta", "dpso", "es"});
  ranked.resize(std::min<std::size_t>(3, ranked.size()));
  return ranked;
}

std::unique_ptr<meta::Engine> MakeRace(const Instance& instance,
                                       const EngineOptions& options) {
  const std::vector<std::string> names =
      ResolvePortfolio(instance, options);
  portfolio::RaceParams params;
  params.slice =
      options.race_slice != 0 ? options.race_slice : EnvRaceSlice();
  params.features = portfolio::ComputeFeatures(instance);
  std::vector<portfolio::RaceContender> contenders;
  contenders.reserve(names.size());
  for (const std::string& name : names) {
    if (name == "race") {
      throw std::invalid_argument("race: a race cannot race itself");
    }
    EngineOptions contender_options = options;
    // Contenders run interleaved, so the single request-scoped pool
    // cannot be lent to all of them; each allocates privately.
    contender_options.pool = nullptr;
    contenders.push_back(portfolio::RaceContender{
        name, MakeEngineByName(name, instance, contender_options)});
  }
  return portfolio::MakeRaceEngine(std::move(contenders),
                                   std::move(params));
}

/// The single name -> resumable-engine dispatch both the registry's
/// factories and the race's contender construction go through, so a
/// contender inside a race is configured exactly like a solo run.
std::unique_ptr<meta::Engine> MakeEngineByName(std::string_view name,
                                               const Instance& instance,
                                               const EngineOptions& options) {
  RequireEngineSupports(name, instance);
  if (name == "sa") {
    meta::SaParams params;
    params.iterations = options.generations;
    params.seed = options.seed;
    params.trajectory_stride = options.trajectory_stride;
    params.stop = options.stop;
    params.pool = options.pool;
    return meta::MakeSaEngine(
        meta::SequenceObjective::ForInstance(instance), params);
  }
  if (name == "dpso") {
    meta::DpsoParams params;
    params.iterations = options.generations;
    params.seed = options.seed;
    params.trajectory_stride = options.trajectory_stride;
    params.stop = options.stop;
    params.pool = options.pool;
    return meta::MakeDpsoEngine(
        meta::SequenceObjective::ForInstance(instance), params);
  }
  if (name == "ta") {
    meta::TaParams params;
    params.iterations = options.generations;
    params.seed = options.seed;
    params.trajectory_stride = options.trajectory_stride;
    params.stop = options.stop;
    params.pool = options.pool;
    return meta::MakeTaEngine(
        meta::SequenceObjective::ForInstance(instance), params);
  }
  if (name == "es") {
    meta::EsParams params;
    params.generations = options.generations;
    params.seed = options.seed;
    params.trajectory_stride = options.trajectory_stride;
    params.stop = options.stop;
    params.pool = options.pool;
    return meta::MakeEsEngine(
        meta::SequenceObjective::ForInstance(instance), params);
  }
  if (name == "host") {
    meta::HostEnsembleParams params;
    params.chains = options.chains;
    params.threads = options.threads;
    params.chain.iterations = options.generations;
    params.chain.seed = options.seed;
    params.chain.stop = options.stop;
    return meta::MakeHostEnsembleEngine(
        meta::SequenceObjective::ForInstance(instance), params);
  }
  if (name == "bnb") {
    // Exact tier: runs to an optimality proof (or the request deadline),
    // so options.generations is deliberately ignored — a heuristic
    // iteration budget has no meaning for a certified solve.  The
    // defaulted worker count pins to 1, not the hardware: cost and
    // sequence are worker-invariant but the node count (reported as
    // `evaluations`) is not, and manifest replay compares it
    // bit-for-bit.  Parallel subtree search is opt-in via `threads`.
    exact::BnbParams params;
    params.workers = options.threads == 0 ? 1 : options.threads;
    params.seed = options.seed;
    params.stop = options.stop;
    return exact::MakeBnbEngine(instance, params);
  }
  if (name == "psa") {
    return WithDeviceEngine(options, [&](sim::Device& device) {
      par::ParallelSaParams params;
      params.config = par::LaunchConfig::ForEnsemble(options.ensemble,
                                                     options.block);
      params.generations = options.generations;
      params.seed = options.seed;
      params.vshape_init = options.vshape_init;
      params.trajectory_stride = options.trajectory_stride;
      params.stop = options.stop;
      return par::MakeParallelSaEngine(device, instance, params);
    });
  }
  if (name == "pdpso") {
    return WithDeviceEngine(options, [&](sim::Device& device) {
      par::ParallelDpsoParams params;
      params.config = par::LaunchConfig::ForEnsemble(options.ensemble,
                                                     options.block);
      params.generations = options.generations;
      params.seed = options.seed;
      params.vshape_init = options.vshape_init;
      params.trajectory_stride = options.trajectory_stride;
      params.stop = options.stop;
      return par::MakeParallelDpsoEngine(device, instance, params);
    });
  }
  if (name == "psa-sync") {
    return WithDeviceEngine(options, [&](sim::Device& device) {
      par::ParallelSaSyncParams params;
      params.config = par::LaunchConfig::ForEnsemble(options.ensemble,
                                                     options.block);
      // The generation budget counts single SA steps; the synchronous
      // variant spends them M (=chain_length) at a time per level.
      params.temperature_levels = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(1, options.generations /
                                         params.chain_length));
      params.seed = options.seed;
      params.stop = options.stop;
      return par::MakeParallelSaSyncEngine(device, instance, params);
    });
  }
  if (name == "race") return MakeRace(instance, options);
  throw std::invalid_argument("unknown engine '" + std::string(name) + "'");
}

EngineRegistry MakeDefault() {
  EngineRegistry registry;
  for (const char* name : {"sa", "dpso", "ta", "es", "host", "bnb", "psa",
                           "pdpso", "psa-sync", "race"}) {
    registry.RegisterFactory(
        name, [name](const Instance& instance, const EngineOptions& options) {
          return MakeEngineByName(name, instance, options);
        });
  }
  return registry;
}

}  // namespace

bool IsDeviceEngine(std::string_view name) {
  return name == "psa" || name == "pdpso" || name == "psa-sync";
}

bool EngineSupportsInstance(std::string_view name,
                            const Instance& instance) {
  if (instance.machines() <= 1 &&
      instance.objective() == ScheduleObjective::kTotalPenalty) {
    return true;
  }
  return name == "sa" || name == "ta";
}

std::string EngineSupportDiagnostic(std::string_view name,
                                    const Instance& instance) {
  if (EngineSupportsInstance(name, instance)) return {};
  const std::string variant =
      instance.objective() == ScheduleObjective::kEarlyWork
          ? std::string("the early-work objective")
          : "parallel machines (m=" + std::to_string(instance.machines()) +
                ")";
  return "engine '" + std::string(name) + "' does not support " + variant +
         "; supported engines: sa, ta";
}

void RequireEngineSupports(std::string_view name, const Instance& instance) {
  if (std::string diagnostic = EngineSupportDiagnostic(name, instance);
      !diagnostic.empty()) {
    throw std::invalid_argument(diagnostic);
  }
}

bool RacePortfolioPinned(const EngineOptions& options) {
  return !options.portfolio.empty() ||
         std::getenv("CDD_RACE_PORTFOLIO") != nullptr;
}

void MaterializeRacePortfolio(EngineOptions& options) {
  if (!options.portfolio.empty()) return;
  if (const char* env = std::getenv("CDD_RACE_PORTFOLIO");
      env != nullptr) {
    options.portfolio = env;
  }
}

std::size_t PoolCapacityHint(std::string_view name,
                             const EngineOptions& options) {
  (void)options;
  // Single-chain engines perturb one candidate row in place.
  if (name == "sa" || name == "ta") return 1;
  // Population engines stage a full generation per EvaluateBatch call.
  if (name == "dpso") return meta::DpsoParams{}.swarm;
  if (name == "es") {
    const meta::EsParams defaults;
    return std::max<std::size_t>(std::max(defaults.mu, defaults.lambda), 1);
  }
  // "host" fans out per-thread chains (each with its own pool), "bnb" works
  // on flat side arrays of its own, the device engines keep their
  // generations in device buffers, and "race" interleaves contenders that
  // cannot share one lent pool.
  return 0;
}

void EngineRegistry::Register(std::string name, EngineFn fn) {
  engines_[std::move(name)] = std::move(fn);
}

void EngineRegistry::RegisterFactory(std::string name,
                                     EngineFactory factory) {
  engines_[name] = [factory](const Instance& instance,
                             const EngineOptions& options) {
    const std::unique_ptr<meta::Engine> engine = factory(instance, options);
    const meta::EngineOutput out = meta::RunToCompletion(*engine);
    return EngineRun{out.result, out.device_seconds};
  };
  factories_[std::move(name)] = std::move(factory);
}

const EngineFn* EngineRegistry::Find(std::string_view name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : &it->second;
}

const EngineFactory* EngineRegistry::FindFactory(
    std::string_view name) const {
  const auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : &it->second;
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, fn] : engines_) names.push_back(name);
  return names;  // std::map iterates sorted
}

const EngineRegistry& EngineRegistry::Default() {
  static const EngineRegistry registry = MakeDefault();
  return registry;
}

}  // namespace cdd::serve

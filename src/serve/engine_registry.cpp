#include "serve/engine_registry.hpp"

#include <algorithm>

#include "exact/bnb.hpp"
#include "meta/dpso.hpp"
#include "meta/evostrategy.hpp"
#include "meta/host_ensemble.hpp"
#include "meta/objective.hpp"
#include "meta/sa.hpp"
#include "meta/threshold.hpp"
#include "parallel/parallel_dpso.hpp"
#include "parallel/parallel_sa.hpp"
#include "parallel/parallel_sa_sync.hpp"

namespace cdd::serve {

namespace {

/// Runs \p body with the caller's device or a private GT 560M.
template <class Fn>
EngineRun WithDevice(const EngineOptions& options, Fn&& body) {
  if (options.device != nullptr) return body(*options.device);
  sim::Device device;  // defaults to the paper's GeForce GT 560M
  if (options.exec_backend) device.set_exec_backend(*options.exec_backend);
  return body(device);
}

EngineRun FromGpu(const par::GpuRunResult& gpu) {
  EngineRun run;
  run.result.best = gpu.best;
  run.result.best_cost = gpu.best_cost;
  run.result.evaluations = gpu.evaluations;
  run.result.wall_seconds = gpu.wall_seconds;
  run.result.trajectory = gpu.trajectory;
  run.result.stopped = gpu.stopped;
  run.device_seconds = gpu.device_seconds;
  return run;
}

EngineRegistry MakeDefault() {
  EngineRegistry registry;

  registry.Register(
      "sa", [](const Instance& instance, const EngineOptions& options) {
        meta::SaParams params;
        params.iterations = options.generations;
        params.seed = options.seed;
        params.trajectory_stride = options.trajectory_stride;
        params.stop = options.stop;
        params.pool = options.pool;
        const meta::SequenceObjective objective =
            meta::SequenceObjective::ForInstance(instance);
        return EngineRun{meta::RunSerialSa(objective, params), 0.0};
      });

  registry.Register(
      "dpso", [](const Instance& instance, const EngineOptions& options) {
        meta::DpsoParams params;
        params.iterations = options.generations;
        params.seed = options.seed;
        params.trajectory_stride = options.trajectory_stride;
        params.stop = options.stop;
        params.pool = options.pool;
        const meta::SequenceObjective objective =
            meta::SequenceObjective::ForInstance(instance);
        return EngineRun{meta::RunSerialDpso(objective, params), 0.0};
      });

  registry.Register(
      "ta", [](const Instance& instance, const EngineOptions& options) {
        meta::TaParams params;
        params.iterations = options.generations;
        params.seed = options.seed;
        params.trajectory_stride = options.trajectory_stride;
        params.stop = options.stop;
        params.pool = options.pool;
        const meta::SequenceObjective objective =
            meta::SequenceObjective::ForInstance(instance);
        return EngineRun{meta::RunThresholdAccepting(objective, params),
                         0.0};
      });

  registry.Register(
      "es", [](const Instance& instance, const EngineOptions& options) {
        meta::EsParams params;
        params.generations = options.generations;
        params.seed = options.seed;
        params.trajectory_stride = options.trajectory_stride;
        params.stop = options.stop;
        params.pool = options.pool;
        const meta::SequenceObjective objective =
            meta::SequenceObjective::ForInstance(instance);
        return EngineRun{meta::RunEvolutionStrategy(objective, params),
                         0.0};
      });

  registry.Register(
      "host", [](const Instance& instance, const EngineOptions& options) {
        meta::HostEnsembleParams params;
        params.chains = options.chains;
        params.threads = options.threads;
        params.chain.iterations = options.generations;
        params.chain.seed = options.seed;
        params.chain.stop = options.stop;
        const meta::SequenceObjective objective =
            meta::SequenceObjective::ForInstance(instance);
        return EngineRun{meta::RunHostEnsembleSa(objective, params), 0.0};
      });

  registry.Register(
      "bnb", [](const Instance& instance, const EngineOptions& options) {
        // Exact tier: runs to an optimality proof (or the request deadline),
        // so options.generations is deliberately ignored — a heuristic
        // iteration budget has no meaning for a certified solve.  The
        // defaulted worker count pins to 1, not the hardware: cost and
        // sequence are worker-invariant but the node count (reported as
        // `evaluations`) is not, and manifest replay compares it
        // bit-for-bit.  Parallel subtree search is opt-in via `threads`.
        exact::BnbParams params;
        params.workers = options.threads == 0 ? 1 : options.threads;
        params.seed = options.seed;
        params.stop = options.stop;
        const exact::BnbResult bnb = exact::BranchAndBound(instance, params);
        EngineRun run;
        run.result.best = bnb.sequence;
        run.result.best_cost = bnb.cost;
        run.result.evaluations = bnb.nodes_expanded;
        run.result.stopped = !bnb.proven_optimal;
        return run;
      });

  registry.Register(
      "psa", [](const Instance& instance, const EngineOptions& options) {
        return WithDevice(options, [&](sim::Device& device) {
          par::ParallelSaParams params;
          params.config = par::LaunchConfig::ForEnsemble(options.ensemble,
                                                         options.block);
          params.generations = options.generations;
          params.seed = options.seed;
          params.vshape_init = options.vshape_init;
          params.trajectory_stride = options.trajectory_stride;
          params.stop = options.stop;
          return FromGpu(par::RunParallelSa(device, instance, params));
        });
      });

  registry.Register(
      "pdpso", [](const Instance& instance, const EngineOptions& options) {
        return WithDevice(options, [&](sim::Device& device) {
          par::ParallelDpsoParams params;
          params.config = par::LaunchConfig::ForEnsemble(options.ensemble,
                                                         options.block);
          params.generations = options.generations;
          params.seed = options.seed;
          params.vshape_init = options.vshape_init;
          params.trajectory_stride = options.trajectory_stride;
          params.stop = options.stop;
          return FromGpu(par::RunParallelDpso(device, instance, params));
        });
      });

  registry.Register(
      "psa-sync",
      [](const Instance& instance, const EngineOptions& options) {
        return WithDevice(options, [&](sim::Device& device) {
          par::ParallelSaSyncParams params;
          params.config = par::LaunchConfig::ForEnsemble(options.ensemble,
                                                         options.block);
          // The generation budget counts single SA steps; the synchronous
          // variant spends them M (=chain_length) at a time per level.
          params.temperature_levels = static_cast<std::uint32_t>(
              std::max<std::uint64_t>(1, options.generations /
                                             params.chain_length));
          params.seed = options.seed;
          params.stop = options.stop;
          return FromGpu(par::RunParallelSaSync(device, instance, params));
        });
      });

  return registry;
}

}  // namespace

bool IsDeviceEngine(std::string_view name) {
  return name == "psa" || name == "pdpso" || name == "psa-sync";
}

std::size_t PoolCapacityHint(std::string_view name,
                             const EngineOptions& options) {
  (void)options;
  // Single-chain engines perturb one candidate row in place.
  if (name == "sa" || name == "ta") return 1;
  // Population engines stage a full generation per EvaluateBatch call.
  if (name == "dpso") return meta::DpsoParams{}.swarm;
  if (name == "es") {
    const meta::EsParams defaults;
    return std::max<std::size_t>(std::max(defaults.mu, defaults.lambda), 1);
  }
  // "host" fans out per-thread chains (each with its own pool), "bnb" works
  // on flat side arrays of its own, and the device engines keep their
  // generations in device buffers.
  return 0;
}

void EngineRegistry::Register(std::string name, EngineFn fn) {
  engines_[std::move(name)] = std::move(fn);
}

const EngineFn* EngineRegistry::Find(std::string_view name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : &it->second;
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, fn] : engines_) names.push_back(name);
  return names;  // std::map iterates sorted
}

const EngineRegistry& EngineRegistry::Default() {
  static const EngineRegistry registry = MakeDefault();
  return registry;
}

}  // namespace cdd::serve

#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "trace/json.hpp"

namespace cdd::serve {

namespace {

/// Bucket index for a latency of \p us microseconds: 4 sub-buckets per
/// octave, i.e. lower bound of bucket i is 2^(i/4) us.
int BucketIndex(double us) {
  if (us <= 1.0) return 0;
  const int i = static_cast<int>(std::floor(std::log2(us) * 4.0));
  return std::min(i, LatencyHistogram::kBuckets - 1);
}

/// Geometric midpoint of bucket i, in microseconds.
double BucketMid(int i) {
  return std::exp2((static_cast<double>(i) + 0.5) / 4.0);
}

}  // namespace

void LatencyHistogram::Record(double ms) {
  // Harden against hostile samples before any float->int conversion (all
  // of which would be UB on NaN/inf): NaN and negatives clamp to zero,
  // +inf clamps to the top bucket's range.  A corrupted duration must
  // never corrupt the histogram, only land in an extreme bucket.
  if (std::isnan(ms) || ms < 0.0) ms = 0.0;
  constexpr double kMaxUs = 4.0e13;  // ~11,000 hours; above every bucket
  const double us = std::min(ms * 1000.0, kMaxUs);
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  const auto us_int = static_cast<std::uint64_t>(us);
  sum_us_.fetch_add(us_int, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us_int > seen &&
         !max_us_.compare_exchange_weak(seen, us_int,
                                        std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::Percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile (1-based, nearest-rank definition).
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMid(i) / 1000.0;
  }
  return max_ms();
}

double LatencyHistogram::mean_ms() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1000.0;
}

double LatencyHistogram::max_ms() const {
  return static_cast<double>(max_us_.load(std::memory_order_relaxed)) /
         1000.0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  for (auto& [key, value] : counters_) {
    if (key == name) return *value;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  for (auto& [key, value] : histograms_) {
    if (key == name) return *value;
  }
  histograms_.emplace_back(name, std::make_unique<LatencyHistogram>());
  return *histograms_.back().second;
}

std::string MetricsRegistry::SnapshotJson() const {
  const std::scoped_lock lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i > 0) out << ",";
    // Names are caller-supplied: escape them so a quote, backslash or
    // control character cannot break the snapshot out of its JSON string.
    out << "\"" << trace::JsonEscape(counters_[i].first)
        << "\":" << counters_[i].second->value();
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const LatencyHistogram& h = *histograms_[i].second;
    if (i > 0) out << ",";
    out << "\"" << trace::JsonEscape(histograms_[i].first)
        << "\":{\"count\":" << h.count()
        << ",\"mean\":" << h.mean_ms() << ",\"p50\":" << h.Percentile(0.50)
        << ",\"p95\":" << h.Percentile(0.95)
        << ",\"p99\":" << h.Percentile(0.99) << ",\"max\":" << h.max_ms()
        << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace cdd::serve

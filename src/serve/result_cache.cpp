#include "serve/result_cache.hpp"

#include <algorithm>

namespace cdd::serve {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  const std::size_t count =
      std::clamp<std::size_t>(shards, 1, std::max<std::size_t>(capacity, 1));
  shards_.reserve(count);
  // Distribute the capacity; the first shards absorb the remainder so the
  // total is exactly `capacity`.
  const std::size_t base = capacity / count;
  std::size_t remainder = capacity % count;
  for (std::size_t s = 0; s < count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    shards_.push_back(std::move(shard));
  }
}

std::shared_ptr<const ResultCache::Entry> ResultCache::Get(
    std::uint64_t key) {
  // A disabled cache has nothing to find and no stats worth serializing
  // for: return without touching a shard mutex, mirroring Put.
  if (capacity_ == 0) return nullptr;
  Shard& shard = ShardFor(key);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;  // refcount bump, no Entry copy
}

void ResultCache::Put(std::uint64_t key, Entry entry) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  const std::scoped_lock lock(shard.mutex);
  if (shard.capacity == 0) return;
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second =
        std::make_shared<const Entry>(std::move(entry));
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(key,
                          std::make_shared<const Entry>(std::move(entry)));
  shard.index[key] = shard.lru.begin();
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
  }
  return total;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace cdd::serve

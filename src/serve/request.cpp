#include "serve/request.hpp"

#include <string>

#include "core/hash.hpp"

namespace cdd::serve {

std::string_view ToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk:
      return "ok";
    case SolveStatus::kCacheHit:
      return "cache_hit";
    case SolveStatus::kDeadlineExpired:
      return "deadline_expired";
    case SolveStatus::kRejectedQueueFull:
      return "rejected_queue_full";
    case SolveStatus::kRejectedUnknownEngine:
      return "rejected_unknown_engine";
    case SolveStatus::kRejectedInvalidInstance:
      return "rejected_invalid_instance";
    case SolveStatus::kRejectedDeadlineInfeasible:
      return "rejected_deadline_infeasible";
    case SolveStatus::kShedOverload:
      return "shed_overload";
    case SolveStatus::kShuttingDown:
      return "shutting_down";
    case SolveStatus::kShutdown:
      return "shutdown";
    case SolveStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

std::optional<SolveStatus> SolveStatusFromName(std::string_view name) {
  for (const SolveStatus status :
       {SolveStatus::kOk, SolveStatus::kCacheHit,
        SolveStatus::kDeadlineExpired, SolveStatus::kRejectedQueueFull,
        SolveStatus::kRejectedUnknownEngine,
        SolveStatus::kRejectedInvalidInstance,
        SolveStatus::kRejectedDeadlineInfeasible, SolveStatus::kShedOverload,
        SolveStatus::kShuttingDown, SolveStatus::kShutdown,
        SolveStatus::kFailed}) {
    if (ToString(status) == name) return status;
  }
  return std::nullopt;
}

std::string ValidateRequestInstance(const Instance& instance) {
  if (instance.problem() == Problem::kUcddcp &&
      !instance.is_unrestricted()) {
    return "restricted UCDDCP instance: d = " +
           std::to_string(instance.due_date()) + " < sum(P_i) = " +
           std::to_string(instance.total_processing_time()) +
           "; the O(n) algorithm of Awasthi et al. requires the "
           "unrestricted case (d >= sum P_i)";
  }
  return {};
}

std::uint64_t CacheKey(const SolveRequest& request) {
  std::uint64_t h = HashInstance(request.instance);
  h = HashBytes(h, request.engine.data(), request.engine.size());
  h = HashCombine(h, request.options.generations);
  h = HashCombine(h, request.options.seed);
  h = HashCombine(h, request.options.ensemble);
  h = HashCombine(h, request.options.block);
  h = HashCombine(h, request.options.chains);
  h = HashCombine(h, request.options.vshape_init ? 1 : 0);
  h = HashCombine(h, request.options.trajectory_stride);
  h = HashBytes(h, request.options.portfolio.data(),
                request.options.portfolio.size());
  h = HashCombine(h, request.options.race_slice);
  return h;
}

}  // namespace cdd::serve

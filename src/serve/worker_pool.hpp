#pragma once
/// \file worker_pool.hpp
/// \brief Fixed pool of consumer threads over a JobQueue.
///
/// Each worker loops Pop() -> handler until the queue is closed and
/// drained, so joining the pool after JobQueue::Close() guarantees every
/// accepted job was handed to the handler exactly once.  The handler
/// receives the worker's slot index so the owner can maintain per-worker
/// state (the SolverService keeps one reusable StopSource per slot).

#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "serve/job_queue.hpp"

namespace cdd::serve {

/// Consumes a JobQueue<T> with `workers` threads.
template <class T>
class WorkerPool {
 public:
  using Handler = std::function<void(T&&, unsigned slot)>;

  WorkerPool(JobQueue<T>& queue, unsigned workers, Handler handler)
      : queue_(queue), handler_(std::move(handler)) {
    if (workers == 0) workers = 1;
    threads_.reserve(workers);
    for (unsigned slot = 0; slot < workers; ++slot) {
      threads_.emplace_back([this, slot] {
        while (auto job = queue_.Pop()) {
          handler_(std::move(*job), slot);
        }
      });
    }
  }

  ~WorkerPool() { Join(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Waits for all workers to finish.  Callers must Close() the queue
  /// first or this blocks forever; idempotent afterwards.
  void Join() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

 private:
  JobQueue<T>& queue_;
  Handler handler_;
  std::vector<std::thread> threads_;
};

}  // namespace cdd::serve

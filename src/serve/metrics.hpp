#pragma once
/// \file metrics.hpp
/// \brief Counters and latency histograms for the solver service.
///
/// Everything on the hot path is a relaxed atomic increment: counters are a
/// single fetch_add, histograms one fetch_add into a geometric bucket
/// (ratio 2^(1/4), so quantile estimates are within ~9% of the true value).
/// Snapshots are read without stopping the world and serialized to JSON for
/// scraping; registration returns stable references, so engines keep a
/// Counter* and never touch the registry map again.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cdd::serve {

/// Monotonic event counter.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latency histogram over geometric buckets of ratio 2^(1/4), covering
/// 1 microsecond .. ~9 hours in 128 buckets.  Record() is wait-free;
/// Percentile() walks the buckets and interpolates geometrically.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 128;

  /// Records one sample, given in milliseconds.
  void Record(double ms);

  /// Approximate q-quantile in milliseconds, q in [0, 1]; 0 when empty.
  double Percentile(double q) const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double mean_ms() const;
  double max_ms() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Named counters and histograms with a JSON snapshot.  Registration
/// (counter()/histogram()) takes a lock and returns a stable reference;
/// increments and snapshots are lock-free afterwards.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// One-line JSON object:
  /// {"counters":{...},"histograms":{"solve_ms":{"count":..,"mean":..,
  ///  "p50":..,"p95":..,"p99":..,"max":..},...}}
  /// Registration order is preserved so diffs of scraped snapshots are
  /// stable.
  std::string SnapshotJson() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<LatencyHistogram>>>
      histograms_;
};

}  // namespace cdd::serve

#pragma once
/// \file job_queue.hpp
/// \brief Bounded MPMC queue — the admission-control point of the service.
///
/// The queue is deliberately *bounded* and *rejecting*: under overload,
/// TryPush fails immediately — with a reason, PushResult::kFull vs
/// kClosed — so the caller can answer SolveStatus::kRejectedQueueFull
/// (or kShuttingDown) instead of letting latency grow without bound
/// (load shedding at the front door, not timeouts at the back).
///
/// Shutdown protocol: Close() makes all future pushes fail while consumers
/// keep draining; Pop() returns nullopt only once the queue is closed *and*
/// empty, so no accepted item is ever dropped.
///
/// Ordering: every pop hands out the highest-priority item, FIFO within a
/// priority level (so the default all-zero workload behaves exactly like
/// the plain FIFO it used to be).  MaxPriority()/TryPopAbove() exist for
/// the service's preemption loop: a worker mid-solve can ask "is something
/// more urgent waiting?" and claim it without blocking.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <iterator>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

namespace cdd::serve {

/// Why a push was refused — distinct reasons, because the caller's answer
/// differs: a *full* queue is backpressure on a live service (retryable,
/// kRejectedQueueFull), a *closed* queue is shutdown (kShuttingDown, do
/// not retry).  Conflating them made the shutdown window inflate the
/// overload metrics.
enum class PushResult {
  kOk,      ///< enqueued
  kFull,    ///< at capacity: backpressure, caller may retry later
  kClosed,  ///< shut down: no push will ever succeed again
};

/// Bounded multi-producer multi-consumer priority queue (FIFO within a
/// priority level).  T must be movable.
template <class T>
class JobQueue {
 public:
  /// MaxPriority() when the queue is empty: less than any real priority.
  static constexpr int kNoPriority = std::numeric_limits<int>::min();

  /// \p capacity must be >= 1; the queue never holds more items than this.
  explicit JobQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues \p item if there is room and the queue is open.  On refusal
  /// the reason comes back (kFull vs kClosed) and \p item is untouched —
  /// the caller still owns it and can complete it with the matching
  /// rejection status.
  PushResult TryPush(T&& item, int priority = 0) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(Entry{priority, std::move(item)});
    }
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means "no more work ever" (the consumer should exit).
  std::optional<T> Pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return PopBestLocked();
  }

  /// Non-blocking Pop; nullopt when nothing is ready right now.
  std::optional<T> TryPop() {
    const std::scoped_lock lock(mutex_);
    return PopBestLocked();
  }

  /// Priority of the item the next Pop would return, or kNoPriority when
  /// the queue is empty.  A point-in-time answer — racing producers can
  /// change it immediately — which is all the preemption check needs.
  int MaxPriority() const {
    const std::scoped_lock lock(mutex_);
    int best = kNoPriority;
    for (const Entry& entry : items_) {
      if (entry.priority > best) best = entry.priority;
    }
    return best;
  }

  /// Pops the highest-priority item only if its priority is strictly
  /// above \p floor; nullopt otherwise.  The atomic check-and-claim of
  /// the preemption loop: a worker paused at a checkpoint claims more
  /// urgent work, or nothing.
  std::optional<T> TryPopAbove(int floor) {
    const std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    const auto best = FindBestLocked();
    if (best->priority <= floor) return std::nullopt;
    std::optional<T> item(std::move(best->item));
    items_.erase(best);
    return item;
  }

  /// Removes and returns the lowest-priority queued item, but only if its
  /// priority is strictly below \p below; nullopt otherwise (including
  /// empty).  The newest item of the lowest level is taken — it would
  /// have been served last anyway — so under overload a higher-priority
  /// arrival displaces exactly the work the service would shed next.
  std::optional<T> TryEvictLowest(int below) {
    const std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    auto worst = items_.begin();
    for (auto it = std::next(worst); it != items_.end(); ++it) {
      // >= keeps walking to the *last* entry of the lowest level.
      if (it->priority <= worst->priority) worst = it;
    }
    if (worst->priority >= below) return std::nullopt;
    std::optional<T> item(std::move(worst->item));
    items_.erase(worst);
    return item;
  }

  /// Priority of the item TryEvictLowest would consider, or kNoPriority
  /// when the queue is empty.  Point-in-time, like MaxPriority().
  int MinPriority() const {
    const std::scoped_lock lock(mutex_);
    int worst = std::numeric_limits<int>::max();
    for (const Entry& entry : items_) {
      if (entry.priority < worst) worst = entry.priority;
    }
    return items_.empty() ? kNoPriority : worst;
  }

  /// Closes the queue: producers are rejected from now on, consumers drain
  /// the remaining items and then see nullopt.  Idempotent.
  void Close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    int priority = 0;
    T item;
  };

  /// First entry with the maximum priority — FIFO within a level.
  /// Requires mutex_ held and items_ non-empty.
  typename std::deque<Entry>::iterator FindBestLocked() {
    auto best = items_.begin();
    for (auto it = std::next(best); it != items_.end(); ++it) {
      if (it->priority > best->priority) best = it;
    }
    return best;
  }

  /// Requires mutex_ held.
  std::optional<T> PopBestLocked() {
    if (items_.empty()) return std::nullopt;
    const auto best = FindBestLocked();
    std::optional<T> item(std::move(best->item));
    items_.erase(best);
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Entry> items_;
  bool closed_ = false;
};

}  // namespace cdd::serve

#pragma once
/// \file job_queue.hpp
/// \brief Bounded MPMC queue — the admission-control point of the service.
///
/// The queue is deliberately *bounded* and *rejecting*: under overload,
/// TryPush fails immediately so the caller can answer
/// SolveStatus::kRejectedQueueFull instead of letting latency grow without
/// bound (load shedding at the front door, not timeouts at the back).
///
/// Shutdown protocol: Close() makes all future pushes fail while consumers
/// keep draining; Pop() returns nullopt only once the queue is closed *and*
/// empty, so no accepted item is ever dropped.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace cdd::serve {

/// Bounded multi-producer multi-consumer FIFO.  T must be movable.
template <class T>
class JobQueue {
 public:
  /// \p capacity must be >= 1; the queue never holds more items than this.
  explicit JobQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues \p item if there is room and the queue is open.  On failure
  /// returns false and leaves \p item untouched (the caller still owns it
  /// and can complete it with a rejection status).
  bool TryPush(T&& item) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means "no more work ever" (the consumer should exit).
  std::optional<T> Pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  /// Non-blocking Pop; nullopt when nothing is ready right now.
  std::optional<T> TryPop() {
    const std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  /// Closes the queue: producers are rejected from now on, consumers drain
  /// the remaining items and then see nullopt.  Idempotent.
  void Close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cdd::serve

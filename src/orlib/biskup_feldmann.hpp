#pragma once
/// \file biskup_feldmann.hpp
/// \brief Re-implementation of the Biskup & Feldmann benchmark generator
/// behind the OR-library CDD instances [17], [18], plus the UCDDCP
/// extension of Awasthi et al. [8].
///
/// The published benchmark set draws, per job,
///   P_i ~ U{1..20},  alpha_i ~ U{1..10},  beta_i ~ U{1..15},
/// and derives the common due date from a restrictiveness factor h:
///   d = floor(h * sum P_i),  h in {0.2, 0.4, 0.6, 0.8},
/// with 10 instances (k = 0..9) per job count n in
/// {10, 20, 50, 100, 200, 500, 1000}.  The paper reports averages over the
/// 40 = 10 x 4 instances of each n (Tables II-V).
///
/// This environment has no network access to the OR-library, so the
/// generator reproduces the distributions (DESIGN.md §2); genuine sch files
/// can be loaded through schfile.hpp instead.  Instances are deterministic
/// in (seed, n, k): every run of every binary sees the same benchmark.
///
/// UCDDCP extension: the unrestricted due date d = sum P_i, minimum
/// processing times M_i ~ U{1..P_i} and compression penalties
/// gamma_i ~ U{1..10}.

#include <array>
#include <cstdint>
#include <vector>

#include "core/instance.hpp"

namespace cdd::orlib {

/// Job counts of the published benchmark (Tables II-V of the paper).
inline constexpr std::array<std::uint32_t, 7> kPaperSizes = {
    10, 20, 50, 100, 200, 500, 1000};

/// Restrictiveness factors of the published benchmark.
inline constexpr std::array<double, 4> kPaperH = {0.2, 0.4, 0.6, 0.8};

/// Instances per (n, h) pair in the published benchmark.
inline constexpr std::uint32_t kPaperInstancesPerSize = 10;

/// Deterministic benchmark generator.
class BiskupFeldmannGenerator {
 public:
  explicit BiskupFeldmannGenerator(std::uint64_t seed = 20160523);

  /// Per-job data of benchmark instance (n, k); k is the instance index.
  /// Pure CDD data (M_i = P_i, gamma_i = 0).
  std::vector<Job> JobData(std::uint32_t n, std::uint32_t k) const;

  /// CDD instance (n, k) with due date d = floor(h * sum P_i).
  Instance Cdd(std::uint32_t n, std::uint32_t k, double h) const;

  /// UCDDCP instance (n, k): same P/alpha/beta as the CDD instance, plus
  /// M_i ~ U{1..P_i}, gamma_i ~ U{1..10}, and the unrestricted due date
  /// d = sum P_i.
  Instance Ucddcp(std::uint32_t n, std::uint32_t k) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Canonical string key of a benchmark instance, used by the best-known
/// registry and the experiment logs (e.g. "cdd-n50-k3-h0.60",
/// "ucddcp-n200-k7").
std::string CddKey(std::uint32_t n, std::uint32_t k, double h);
std::string UcddcpKey(std::uint32_t n, std::uint32_t k);

}  // namespace cdd::orlib

#include "orlib/biskup_feldmann.hpp"

#include <cstdio>
#include <numeric>

#include "core/sequence.hpp"  // UniformBelow
#include "rng/philox.hpp"

namespace cdd::orlib {
namespace {

/// Uniform integer in {lo..hi} from a Philox stream.
Time UniformInt(rng::Philox4x32& rng, Time lo, Time hi) {
  const auto range = static_cast<std::uint32_t>(hi - lo + 1);
  return lo + static_cast<Time>(cdd::UniformBelow(rng, range));
}

/// Dedicated stream per (n, k, purpose) so adding purposes never perturbs
/// previously generated data.
enum class Purpose : std::uint64_t { kCddJobs = 1, kUcddcpExtension = 2 };

rng::Philox4x32 StreamFor(std::uint64_t seed, std::uint32_t n,
                          std::uint32_t k, Purpose purpose) {
  const std::uint64_t stream =
      (static_cast<std::uint64_t>(purpose) << 56) |
      (static_cast<std::uint64_t>(n) << 24) | k;
  return rng::Philox4x32(seed, stream);
}

}  // namespace

BiskupFeldmannGenerator::BiskupFeldmannGenerator(std::uint64_t seed)
    : seed_(seed) {}

std::vector<Job> BiskupFeldmannGenerator::JobData(std::uint32_t n,
                                                  std::uint32_t k) const {
  rng::Philox4x32 rng = StreamFor(seed_, n, k, Purpose::kCddJobs);
  std::vector<Job> jobs(n);
  for (Job& j : jobs) {
    j.proc = UniformInt(rng, 1, 20);
    j.min_proc = j.proc;
    j.early = UniformInt(rng, 1, 10);
    j.tardy = UniformInt(rng, 1, 15);
    j.compress = 0;
  }
  return jobs;
}

Instance BiskupFeldmannGenerator::Cdd(std::uint32_t n, std::uint32_t k,
                                      double h) const {
  std::vector<Job> jobs = JobData(n, k);
  const Time total = std::accumulate(
      jobs.begin(), jobs.end(), Time{0},
      [](Time acc, const Job& j) { return acc + j.proc; });
  const Time d = static_cast<Time>(h * static_cast<double>(total));
  return Instance(Problem::kCdd, d, std::move(jobs));
}

Instance BiskupFeldmannGenerator::Ucddcp(std::uint32_t n,
                                         std::uint32_t k) const {
  std::vector<Job> jobs = JobData(n, k);
  rng::Philox4x32 rng = StreamFor(seed_, n, k, Purpose::kUcddcpExtension);
  Time total = 0;
  for (Job& j : jobs) {
    j.min_proc = UniformInt(rng, 1, j.proc);
    j.compress = UniformInt(rng, 1, 10);
    total += j.proc;
  }
  return Instance(Problem::kUcddcp, total, std::move(jobs));
}

std::string CddKey(std::uint32_t n, std::uint32_t k, double h) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "cdd-n%u-k%u-h%.2f", n, k, h);
  return buf;
}

std::string UcddcpKey(std::uint32_t n, std::uint32_t k) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "ucddcp-n%u-k%u", n, k);
  return buf;
}

}  // namespace cdd::orlib

#pragma once
/// \file schfile.hpp
/// \brief Reader/writer for OR-library "sch" benchmark files.
///
/// CDD format (OR-library `schN` files, Biskup & Feldmann):
///
///   K                      number of instances in the file
///   n                      jobs of instance 1
///   p_1 a_1 b_1            processing time, earliness and tardiness penalty
///   ...                    (n rows)
///   n                      jobs of instance 2
///   ...
///
/// The due date is not stored; it derives from the restrictiveness factor h
/// as d = floor(h * sum p_i), exactly as the OR-library documents.
///
/// UCDDCP extension format (this library's, for the instances of Awasthi
/// et al. [8]): same framing with five columns per job,
///   p_i m_i a_i b_i g_i
/// and the unrestricted due date d = sum p_i.
///
/// Parse errors throw SchParseError carrying the offending line number and,
/// when the input came from a file, the file path ("path:line: ...").

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/instance.hpp"

namespace cdd::orlib {

/// Error raised for malformed or truncated benchmark files.
class SchParseError : public std::runtime_error {
 public:
  SchParseError(const std::string& what, std::size_t line,
                const std::string& file = "")
      : std::runtime_error(Format(what, line, file)),
        line_(line),
        file_(file) {}
  std::size_t line() const { return line_; }
  /// Source file path; empty when parsing an anonymous stream.
  const std::string& file() const { return file_; }

 private:
  static std::string Format(const std::string& what, std::size_t line,
                            const std::string& file) {
    const std::string at = file.empty()
                               ? "line " + std::to_string(line)
                               : file + ":" + std::to_string(line);
    return "sch parse error (" + at + "): " + what;
  }

  std::size_t line_;
  std::string file_;
};

/// Job table of one parsed instance (no due date yet for CDD files).
using JobTable = std::vector<Job>;

/// Parses a CDD sch file (3 columns per job).
std::vector<JobTable> ParseCddFile(std::istream& in);

/// Parses a UCDDCP file (5 columns per job).
std::vector<JobTable> ParseUcddcpFile(std::istream& in);

/// Opens and parses a CDD sch file.  Throws SchParseError with the path in
/// the message for unreadable, malformed or truncated files.
std::vector<JobTable> LoadCddFile(const std::string& path);

/// Opens and parses a UCDDCP 5-column file, with the same diagnostics.
std::vector<JobTable> LoadUcddcpFile(const std::string& path);

/// Writes job tables in CDD sch format.
void WriteCddFile(std::ostream& out, const std::vector<JobTable>& tables);

/// Writes job tables in the UCDDCP 5-column format.
void WriteUcddcpFile(std::ostream& out, const std::vector<JobTable>& tables);

/// Materializes a CDD instance from a parsed table and an h factor.
Instance MakeCddInstance(const JobTable& jobs, double h);

/// Materializes a UCDDCP instance from a parsed table (d = sum p_i).
Instance MakeUcddcpInstance(const JobTable& jobs);

}  // namespace cdd::orlib

#include "orlib/schfile.hpp"

#include <fstream>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

namespace cdd::orlib {
namespace {

/// Line-oriented token reader that tracks line numbers (and optionally the
/// source file path) for diagnostics.
class TokenReader {
 public:
  TokenReader(std::istream& in, const std::string& file)
      : in_(in), file_(file) {}

  /// Next whitespace-separated integer token; throws SchParseError at EOF
  /// or on a non-numeric token.
  long long NextInt(const char* what) {
    std::string token;
    for (;;) {
      if (!(line_stream_ >> token)) {
        if (!std::getline(in_, line_)) {
          throw SchParseError(std::string("unexpected end of file, wanted ") +
                                  what,
                              line_no_, file_);
        }
        ++line_no_;
        line_stream_.clear();
        line_stream_.str(line_);
        continue;
      }
      break;
    }
    try {
      std::size_t pos = 0;
      const long long value = std::stoll(token, &pos);
      if (pos != token.size()) throw std::invalid_argument(token);
      return value;
    } catch (const std::exception&) {
      throw SchParseError("expected integer for " + std::string(what) +
                              ", got '" + token + "'",
                          line_no_, file_);
    }
  }

  /// True when nothing but whitespace remains in the input.
  bool AtEnd() {
    std::string token;
    for (;;) {
      if (line_stream_ >> token) {
        leftover_ = token;
        return false;
      }
      if (!std::getline(in_, line_)) return true;
      ++line_no_;
      line_stream_.clear();
      line_stream_.str(line_);
    }
  }

  std::size_t line() const { return line_no_; }
  const std::string& file() const { return file_; }
  const std::string& leftover() const { return leftover_; }

 private:
  std::istream& in_;
  std::string file_;
  std::string line_;
  std::string leftover_;
  std::istringstream line_stream_;
  std::size_t line_no_ = 0;
};

std::vector<JobTable> ParseFile(std::istream& in, int columns,
                                const std::string& file = "") {
  TokenReader reader(in, file);
  const long long count = reader.NextInt("instance count");
  if (count < 1 || count > 1'000'000) {
    throw SchParseError("implausible instance count " +
                            std::to_string(count),
                        reader.line(), file);
  }
  std::vector<JobTable> tables;
  tables.reserve(static_cast<std::size_t>(count));
  for (long long inst = 0; inst < count; ++inst) {
    const long long n = reader.NextInt("job count");
    if (n < 1 || n > 10'000'000) {
      throw SchParseError("implausible job count " + std::to_string(n),
                          reader.line(), file);
    }
    JobTable jobs(static_cast<std::size_t>(n));
    for (Job& j : jobs) {
      j.proc = reader.NextInt("processing time");
      if (columns == 5) {
        j.min_proc = reader.NextInt("minimum processing time");
      } else {
        j.min_proc = j.proc;
      }
      j.early = reader.NextInt("earliness penalty");
      j.tardy = reader.NextInt("tardiness penalty");
      j.compress = columns == 5 ? reader.NextInt("compression penalty") : 0;
      if (j.proc < 1) {
        throw SchParseError("processing time must be >= 1", reader.line(),
                            file);
      }
      if (j.min_proc < 0 || j.min_proc > j.proc) {
        throw SchParseError("minimum processing time outside [0, p]",
                            reader.line(), file);
      }
      if (j.early < 0 || j.tardy < 0 || j.compress < 0) {
        throw SchParseError("negative penalty", reader.line(), file);
      }
    }
    tables.push_back(std::move(jobs));
  }
  // A well-formed file ends after its declared instances; leftover tokens
  // almost always mean a wrong count or a concatenated/corrupted file.
  if (!reader.AtEnd()) {
    throw SchParseError("trailing data after the declared " +
                            std::to_string(count) + " instance(s): '" +
                            reader.leftover() + "'",
                        reader.line(), file);
  }
  return tables;
}

std::vector<JobTable> LoadFile(const std::string& path, int columns) {
  std::ifstream in(path);
  if (!in) {
    throw SchParseError("cannot open file", 0, path);
  }
  return ParseFile(in, columns, path);
}

}  // namespace

std::vector<JobTable> ParseCddFile(std::istream& in) {
  return ParseFile(in, 3);
}

std::vector<JobTable> ParseUcddcpFile(std::istream& in) {
  return ParseFile(in, 5);
}

std::vector<JobTable> LoadCddFile(const std::string& path) {
  return LoadFile(path, 3);
}

std::vector<JobTable> LoadUcddcpFile(const std::string& path) {
  return LoadFile(path, 5);
}

void WriteCddFile(std::ostream& out, const std::vector<JobTable>& tables) {
  out << tables.size() << "\n";
  for (const JobTable& jobs : tables) {
    out << jobs.size() << "\n";
    for (const Job& j : jobs) {
      out << j.proc << " " << j.early << " " << j.tardy << "\n";
    }
  }
}

void WriteUcddcpFile(std::ostream& out, const std::vector<JobTable>& tables) {
  out << tables.size() << "\n";
  for (const JobTable& jobs : tables) {
    out << jobs.size() << "\n";
    for (const Job& j : jobs) {
      out << j.proc << " " << j.min_proc << " " << j.early << " " << j.tardy
          << " " << j.compress << "\n";
    }
  }
}

Instance MakeCddInstance(const JobTable& jobs, double h) {
  const Time total = std::accumulate(
      jobs.begin(), jobs.end(), Time{0},
      [](Time acc, const Job& j) { return acc + j.proc; });
  const Time d = static_cast<Time>(h * static_cast<double>(total));
  return Instance(Problem::kCdd, d, jobs);
}

Instance MakeUcddcpInstance(const JobTable& jobs) {
  const Time total = std::accumulate(
      jobs.begin(), jobs.end(), Time{0},
      [](Time acc, const Job& j) { return acc + j.proc; });
  return Instance(Problem::kUcddcp, total, jobs);
}

}  // namespace cdd::orlib

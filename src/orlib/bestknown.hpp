#pragma once
/// \file bestknown.hpp
/// \brief Registry of best-known solution values per benchmark instance.
///
/// The paper's %Delta columns compare GPU results against the best known
/// solutions of Lässig et al. [7] / Awasthi et al. [8].  Here both sides
/// are regenerated: the benches first compute reference values with the
/// serial CPU baselines, cache them in this registry (optionally persisted
/// as CSV so repeated bench runs are cheap) and then report deviations of
/// the parallel algorithms against them.  Update() keeps the minimum ever
/// seen, so the registry monotonically improves — the same way best-known
/// tables evolve in the literature.

#include <map>
#include <optional>
#include <string>

#include "core/types.hpp"

namespace cdd::orlib {

/// In-memory, optionally file-backed map: instance key -> best-known cost.
class BestKnownRegistry {
 public:
  BestKnownRegistry() = default;

  /// Records \p cost for \p key if it improves on the stored value.
  /// Returns true when the entry changed.
  bool Update(const std::string& key, Cost cost);

  /// Best-known cost of \p key, if any.
  std::optional<Cost> Find(const std::string& key) const;

  std::size_t size() const { return values_.size(); }
  const std::map<std::string, Cost>& values() const { return values_; }

  /// Percentage deviation of \p cost from the best known value of \p key:
  /// %Delta = (Z - Z_best) / Z_best * 100 (Section VIII).  Zero-cost
  /// best-knowns deviate by 0 when equal and +inf otherwise.
  double PercentDeviation(const std::string& key, Cost cost) const;

  /// CSV persistence ("key,cost" rows).  Load merges (keeping minima).
  void SaveCsv(const std::string& path) const;
  void LoadCsv(const std::string& path);  ///< no-op if the file is absent

 private:
  std::map<std::string, Cost> values_;
};

}  // namespace cdd::orlib

#include "orlib/bestknown.hpp"

#include <fstream>
#include <limits>
#include <stdexcept>

namespace cdd::orlib {

bool BestKnownRegistry::Update(const std::string& key, Cost cost) {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    values_.emplace(key, cost);
    return true;
  }
  if (cost < it->second) {
    it->second = cost;
    return true;
  }
  return false;
}

std::optional<Cost> BestKnownRegistry::Find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

double BestKnownRegistry::PercentDeviation(const std::string& key,
                                           Cost cost) const {
  const auto best = Find(key);
  if (!best.has_value()) {
    throw std::out_of_range("BestKnownRegistry: no entry for " + key);
  }
  if (*best == 0) {
    return cost == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(cost - *best) / static_cast<double>(*best) *
         100.0;
}

void BestKnownRegistry::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("BestKnownRegistry: cannot write " + path);
  }
  out << "instance,cost\n";
  for (const auto& [key, cost] : values_) {
    out << key << "," << cost << "\n";
  }
}

void BestKnownRegistry::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // absent cache is fine
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    const std::string key = line.substr(0, comma);
    try {
      const Cost cost = std::stoll(line.substr(comma + 1));
      Update(key, cost);
    } catch (const std::exception&) {
      // Skip malformed rows; the cache is advisory.
    }
  }
}

}  // namespace cdd::orlib

/// \file bench_table5_ucddcp_speedup.cpp
/// \brief Experiment E6 — Table V and Figure 17: speed-ups of the four
/// parallel algorithms for the UCDDCP relative to the CPU implementation
/// of Awasthi et al. [8] (stand-in: our serial SA at matched budget).

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/paper_data.hpp"
#include "common/report.hpp"
#include "common/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Regenerates Table V / Figure 17 (UCDDCP speed-ups).\n"
                 "Flags: --paper --sizes a,b,c --ensemble N --block B "
                 "--gens-low G --gens-high G --seed S\n";
    return 0;
  }
  benchutil::Sweep sweep = benchutil::Sweep::FromArgs(args);
  if (!args.Has("sizes") && !args.GetBool("paper")) {
    sweep.sizes = {10, 20, 50, 100, 200, 500, 1000};
  }
  // Runtime/speed-up calibration is cheap (short real runs, analytic
  // extrapolation), so default to the paper's launch configuration.
  if (!args.Has("ensemble")) sweep.ensemble = 768;
  if (!args.Has("block")) sweep.block_size = 192;
  if (!args.Has("gens-low")) sweep.gens_low = 1000;
  if (!args.Has("gens-high")) sweep.gens_high = 5000;

  std::cout << "=== Table V / Fig 17: UCDDCP speed-ups vs CPU [8] ===\n";
  std::cout << "sweep: " << sweep.Describe() << "\n\n";

  const auto rows =
      benchrun::RunSpeedupSweep(Problem::kUcddcp, sweep, std::cout);

  benchutil::TextTable table({"Jobs", "SA_low (paper)", "SA_high (paper)",
                              "DPSO_low (paper)", "DPSO_high (paper)"});
  for (const auto& row : rows) {
    const benchdata::AlgoRow* ref =
        benchdata::FindRow(benchdata::kPaperTable5, row.jobs);
    const auto cell = [&](double cpu, double gpu, double paper_value) {
      std::string out = benchutil::FmtDouble(cpu / gpu, 2);
      if (ref != nullptr) {
        out += " (" + benchutil::FmtDouble(paper_value, 2) + ")";
      }
      return out;
    };
    table.AddRow({std::to_string(row.jobs),
                  cell(row.cpu7_seconds, row.gpu_seconds[0],
                       ref ? ref->sa_low : 0),
                  cell(row.cpu7_seconds, row.gpu_seconds[1],
                       ref ? ref->sa_high : 0),
                  cell(row.cpu7_seconds, row.gpu_seconds[2],
                       ref ? ref->dpso_low : 0),
                  cell(row.cpu7_seconds, row.gpu_seconds[3],
                       ref ? ref->dpso_high : 0)});
  }
  std::cout << "\n" << table.ToString();
  if (args.Has("csv")) {
    benchrun::WriteSpeedupCsv(args.GetString("csv", "table5.csv"), rows);
  }
  std::cout << "\nFig 17 (speed-ups vs [8], bar chart):\n";
  benchrun::PrintSpeedupChart(rows);
  std::cout << "\nPaper shape to verify: sub-1x speed-ups for the smallest "
               "instances (transfer/launch overheads dominate), growing to "
               "~47x (SA_low) and ~10x (SA_high) at n=1000; DPSO speed-ups "
               "lower than SA throughout.\n";
  return 0;
}

/// \file bench_ablation_texture.cpp
/// \brief Section IX's future work, quantified: where should the fitness
/// kernel read the penalty arrays from?  Compares the paper's shared-memory
/// staging (Section VI-A), the read-only texture path with its spatial
/// cache (the "future work" hypothesis), and plain global memory, on the
/// device model.  Results are identical bit for bit across the three —
/// only the modeled time changes.

#include <iostream>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/sweeps.hpp"
#include "cudasim/device.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Penalty-memory ablation (shared vs texture vs global).\n"
                 "Flags: --sizes list --ensemble N --block B --gens G "
                 "--seed S\n";
    return 0;
  }
  const std::vector<std::uint32_t> sizes =
      args.GetUintList("sizes", {50, 200, 1000});
  const auto ensemble =
      static_cast<std::uint32_t>(args.GetInt("ensemble", 768));
  const auto block = static_cast<std::uint32_t>(args.GetInt("block", 192));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 40));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  benchutil::Sweep sweep;
  sweep.seed = seed;

  std::cout << "=== Ablation: fitness-kernel penalty memory (UCDDCP, "
            << ensemble << " chains, " << gens << " generations) ===\n";
  benchutil::TextTable table({"n", "shared [ms]", "texture [ms]",
                              "global [ms]", "texture vs shared",
                              "cost identical"});
  for (const std::uint32_t n : sizes) {
    const Instance instance =
        benchrun::MakeSweepInstance(Problem::kUcddcp, sweep, n, 0);
    double ms[3] = {0, 0, 0};
    Cost costs[3] = {0, 0, 0};
    const par::detail::PenaltyMemory kinds[3] = {
        par::detail::PenaltyMemory::kShared,
        par::detail::PenaltyMemory::kTexture,
        par::detail::PenaltyMemory::kGlobal};
    for (int k = 0; k < 3; ++k) {
      sim::Device gpu(sim::GeForceGT560M());
      par::ParallelSaParams params;
      params.config = par::LaunchConfig::ForEnsemble(ensemble, block);
      params.generations = gens;
      params.temp_samples = 200;
      params.seed = seed;
      params.penalty_memory = kinds[k];
      const par::GpuRunResult result =
          par::RunParallelSa(gpu, instance, params);
      ms[k] = result.device_seconds * 1e3;
      costs[k] = result.best_cost;
    }
    table.AddRow({std::to_string(n), benchutil::FmtDouble(ms[0], 2),
                  benchutil::FmtDouble(ms[1], 2),
                  benchutil::FmtDouble(ms[2], 2),
                  benchutil::FmtDouble(ms[1] / ms[0], 3),
                  (costs[0] == costs[1] && costs[1] == costs[2]) ? "yes"
                                                                 : "NO"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected: global slowest, shared fastest, texture in "
               "between — the texture path would recover most of the "
               "shared-memory benefit without the staging barrier, "
               "supporting the paper's future-work hypothesis.\n";
  return 0;
}

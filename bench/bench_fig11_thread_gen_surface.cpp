/// \file bench_fig11_thread_gen_surface.cpp
/// \brief Experiment E8 — Figure 11: runtime of the parallel UCDDCP
/// fitness evaluations as a function of the thread count (population size)
/// and the number of generations.
///
/// The paper uses this surface to argue the threads-vs-iterations
/// trade-off: both axes grow the runtime, and pushing the thread count
/// past the device's resident capacity serializes block waves.

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/sweeps.hpp"
#include "cudasim/device.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Regenerates Figure 11 (runtime vs threads x "
                 "generations, UCDDCP).\n"
                 "Flags: --n JOBS (default 100) --block B (default 192) "
                 "--threads list --gens list --seed S\n";
    return 0;
  }
  const auto n = static_cast<std::uint32_t>(args.GetInt("n", 100));
  const auto block = static_cast<std::uint32_t>(args.GetInt("block", 192));
  const std::vector<std::uint32_t> thread_axis =
      args.GetUintList("threads", {192, 384, 768, 1536, 3072});
  const std::vector<std::uint32_t> gen_axis =
      args.GetUintList("gens", {100, 200, 400, 800});
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  benchutil::Sweep sweep;
  sweep.seed = seed;
  const Instance instance =
      benchrun::MakeSweepInstance(Problem::kUcddcp, sweep, n, 0);

  std::cout << "=== Fig 11: modeled GT 560M runtime [s], UCDDCP n=" << n
            << ", block=" << block << " ===\n";
  std::vector<std::string> header{"threads \\ gens"};
  for (const std::uint32_t g : gen_axis) header.push_back(std::to_string(g));
  benchutil::TextTable table(header);

  for (const std::uint32_t threads : thread_axis) {
    // Calibrate per-generation device time with a short real run and
    // extrapolate along the generation axis (device time is affine in
    // generations by construction of the pipeline).
    par::ParallelSaParams params;
    params.config = par::LaunchConfig::ForEnsemble(threads, block);
    params.temp_samples = 200;
    params.seed = seed;

    params.generations = 4;
    sim::Device d_short;
    const double t4 =
        par::RunParallelSa(d_short, instance, params).device_seconds;
    params.generations = 12;
    sim::Device d_long;
    const double t12 =
        par::RunParallelSa(d_long, instance, params).device_seconds;
    const double per_gen = (t12 - t4) / 8.0;
    const double setup = t4 - per_gen * 4.0;

    std::vector<std::string> row{std::to_string(threads)};
    for (const std::uint32_t g : gen_axis) {
      row.push_back(benchutil::FmtDouble(setup + per_gen * g, 3));
    }
    table.AddRow(row);
  }
  std::cout << table.ToString();
  std::cout << "\nPaper shape to verify: runtime increases along both "
               "axes; thread counts past the device's one-wave capacity "
               "(32 blocks x 192 threads = 6144 on the GT 560M preset, "
               "i.e. already > 1 wave at 1536 with block 192 when "
               "resident-block limits bind) grow super-proportionally.\n";
  return 0;
}

/// \file bench_table3_cdd_speedup.cpp
/// \brief Experiment E3 — Table III and Figure 13: speed-ups of the four
/// parallel algorithms for the CDD relative to the serial CPU baselines.
///
/// Methodology (EXPERIMENTS.md §E3): GPU time is the analytic device model
/// calibrated on short real runs of the four-kernel pipeline; CPU time is
/// the measured per-evaluation cost of the serial SA ([7] stand-in) and of
/// the [18]-style baseline, extrapolated to the matched evaluation budget
/// (ensemble x generations).  Speed-up = CPU seconds / modeled GPU seconds.

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/paper_data.hpp"
#include "common/report.hpp"
#include "common/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Regenerates Table III / Figure 13 (CDD speed-ups).\n"
                 "Flags: --paper --sizes a,b,c --ensemble N --block B "
                 "--gens-low G --gens-high G --seed S\n";
    return 0;
  }
  benchutil::Sweep sweep = benchutil::Sweep::FromArgs(args);
  if (!args.Has("sizes") && !args.GetBool("paper")) {
    // Speed-ups are cheap to calibrate; default to the paper's full size
    // axis so the trend is visible.
    sweep.sizes = {10, 20, 50, 100, 200, 500, 1000};
  }
  // Runtime/speed-up calibration is cheap (short real runs, analytic
  // extrapolation), so default to the paper's launch configuration.
  if (!args.Has("ensemble")) sweep.ensemble = 768;
  if (!args.Has("block")) sweep.block_size = 192;
  if (!args.Has("gens-low")) sweep.gens_low = 1000;
  if (!args.Has("gens-high")) sweep.gens_high = 5000;

  std::cout << "=== Table III / Fig 13: CDD speed-ups vs CPU baselines "
               "===\n";
  std::cout << "sweep: " << sweep.Describe() << "\n\n";

  const auto rows =
      benchrun::RunSpeedupSweep(Problem::kCdd, sweep, std::cout);

  benchutil::TextTable table(
      {"Jobs", "SA_low [7] (paper)", "SA_low [18] (paper)",
       "SA_high [7] (paper)", "DPSO_low [7] (paper)",
       "DPSO_high [7] (paper)"});
  for (const auto& row : rows) {
    const benchdata::SpeedupRow* ref = benchdata::FindSpeedupRow(row.jobs);
    const auto cell = [&](double cpu, double gpu, double paper_value) {
      std::string out = benchutil::FmtDouble(cpu / gpu, 1);
      if (ref != nullptr) {
        out += " (" + benchutil::FmtDouble(paper_value, 1) + ")";
      }
      return out;
    };
    table.AddRow(
        {std::to_string(row.jobs),
         cell(row.cpu7_seconds, row.gpu_seconds[0],
              ref ? ref->sa_low_7 : 0),
         cell(row.cpu18_seconds, row.gpu_seconds[0],
              ref ? ref->sa_low_18 : 0),
         cell(row.cpu7_seconds, row.gpu_seconds[1],
              ref ? ref->sa_high_7 : 0),
         cell(row.cpu7_seconds, row.gpu_seconds[2],
              ref ? ref->dpso_low_7 : 0),
         cell(row.cpu7_seconds, row.gpu_seconds[3],
              ref ? ref->dpso_high_7 : 0)});
  }
  std::cout << "\n" << table.ToString();
  if (args.Has("csv")) {
    benchrun::WriteSpeedupCsv(args.GetString("csv", "table3.csv"), rows);
  }
  std::cout << "\nFig 13 (speed-ups vs [7], bar chart):\n";
  benchrun::PrintSpeedupChart(rows);
  std::cout << "\nPaper shape to verify: speed-ups grow with n and exceed "
               "100x vs [7] for the largest instances; the [18] column is "
               "uniformly larger than the [7] column; SA_high speed-ups "
               "are ~1/5 of SA_low (5x the work on the same device).\n";
  return 0;
}

/// \file bench_table4_ucddcp_deviation.cpp
/// \brief Experiment E5 — Table IV and Figure 15: average percentage
/// deviation of the four parallel algorithms for the UCDDCP, relative to
/// the serial-CPU best-known reference (Awasthi et al. [8] stand-in).
/// Negative values mean the parallel algorithm improved on the reference,
/// as in the paper.

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "common/paper_data.hpp"
#include "common/report.hpp"
#include "common/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Regenerates Table IV / Figure 15 (UCDDCP %Delta).\n"
                 "Flags: --paper --sizes a,b,c --instances K --ensemble N "
                 "--block B --gens-low G --gens-high G --seed S\n";
    return 0;
  }
  const benchutil::Sweep sweep = benchutil::Sweep::FromArgs(args);

  std::cout << "=== Table IV / Fig 15: UCDDCP average %Delta vs serial "
               "best-known ===\n";
  std::cout << "sweep: " << sweep.Describe() << "\n\n";

  const auto rows =
      benchrun::RunQualitySweep(Problem::kUcddcp, sweep, std::cout);
  std::cout << "\n";
  benchrun::PrintQualityTable(rows, benchdata::kPaperTable4);
  if (args.Has("csv")) {
    benchrun::WriteQualityCsv(args.GetString("csv", "table4.csv"), rows);
  }
  std::cout << "\nFig 15 (mean %Delta, bar chart):\n";
  benchrun::PrintDeviationChart(rows);
  std::cout << "\nPaper shape to verify: SA_high achieves near-zero or "
               "negative deviations (improving the best known); DPSO "
               "degrades with n; the 'improved' column counts instances "
               "where a parallel run beat the serial reference.\n";
  return 0;
}

/// \file bench_ablation_blocksize.cpp
/// \brief Experiment E9 — the block-size discussion of Section VIII: the
/// paper reports 192 threads per block as the sweet spot (theoretical max
/// 1024).  Sweeps the block size at a fixed ensemble and reports modeled
/// device time per generation plus solution quality.

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/sweeps.hpp"
#include "cudasim/device.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Block-size ablation (Section VIII).\n"
                 "Flags: --n JOBS --ensemble N --gens G --blocks list "
                 "--seed S\n";
    return 0;
  }
  const auto n = static_cast<std::uint32_t>(args.GetInt("n", 100));
  const auto ensemble =
      static_cast<std::uint32_t>(args.GetInt("ensemble", 768));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 60));
  const std::vector<std::uint32_t> blocks =
      args.GetUintList("blocks", {32, 48, 64, 96, 128, 192, 256, 384, 768});
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  benchutil::Sweep sweep;
  sweep.seed = seed;
  const Instance instance =
      benchrun::MakeSweepInstance(Problem::kCdd, sweep, n, 0);

  std::cout << "=== Ablation: block size at ensemble " << ensemble
            << ", CDD n=" << n << ", " << gens << " generations ===\n";
  benchutil::TextTable table({"block", "grid", "waves", "device [ms]",
                              "ms/generation", "best cost"});
  for (const std::uint32_t block : blocks) {
    par::ParallelSaParams params;
    params.config = par::LaunchConfig::ForEnsemble(ensemble, block);
    params.generations = gens;
    params.temp_samples = 200;
    params.seed = seed;
    sim::Device gpu(sim::GeForceGT560M());
    const par::GpuRunResult result =
        par::RunParallelSa(gpu, instance, params);
    const std::uint64_t waves = gpu.timing_model().Waves(
        params.config.grid(), params.config.block());
    table.AddRow({std::to_string(block),
                  std::to_string(params.config.blocks),
                  std::to_string(waves),
                  benchutil::FmtDouble(result.device_seconds * 1e3, 2),
                  benchutil::FmtDouble(
                      result.device_seconds * 1e3 /
                          static_cast<double>(gens),
                      3),
                  std::to_string(result.best_cost)});
  }
  std::cout << table.ToString();
  std::cout << "\nPaper shape to verify: warp-aligned block sizes beat "
               "non-multiples of 32 (e.g. 48); very large blocks reduce "
               "resident blocks per SM and stop hiding latency; mid-sized "
               "blocks (the paper picked 192) sit at the sweet spot.\n";
  return 0;
}

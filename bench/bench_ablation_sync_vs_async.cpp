/// \file bench_ablation_sync_vs_async.cpp
/// \brief Experiment E10 — Section V / VI: the paper chose asynchronous
/// over synchronous multi-chain SA citing premature convergence of the
/// latter.  This ablation puts numbers on both sides: solution quality,
/// modeled device time (the synchronous variant pays reduction/broadcast
/// communication every level), and the ensemble-diversity trace.

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/sweeps.hpp"
#include "cudasim/device.hpp"
#include "parallel/parallel_sa.hpp"
#include "parallel/parallel_sa_sync.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Async-vs-sync parallel SA ablation.\n"
                 "Flags: --n JOBS --ensemble N --block B --gens G "
                 "--chain M --instances K --seed S\n";
    return 0;
  }
  const auto n = static_cast<std::uint32_t>(args.GetInt("n", 100));
  const auto ensemble =
      static_cast<std::uint32_t>(args.GetInt("ensemble", 128));
  const auto block = static_cast<std::uint32_t>(args.GetInt("block", 64));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 500));
  const auto chain = static_cast<std::uint32_t>(args.GetInt("chain", 10));
  const auto instances =
      static_cast<std::uint32_t>(args.GetInt("instances", 5));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  benchutil::Sweep sweep;
  sweep.seed = seed;

  std::cout << "=== Ablation: asynchronous vs synchronous parallel SA, "
               "CDD n=" << n << ", matched budget " << gens
            << " evaluations/chain ===\n";
  benchutil::TextTable table({"instance", "async cost", "sync cost",
                              "async dev [ms]", "sync dev [ms]",
                              "final diversity"});
  int async_quality_wins = 0;
  for (std::uint32_t k = 0; k < instances; ++k) {
    const Instance instance =
        benchrun::MakeSweepInstance(Problem::kCdd, sweep, n, k);

    par::ParallelSaParams ap;
    ap.config = par::LaunchConfig::ForEnsemble(ensemble, block);
    ap.generations = gens;
    ap.temp_samples = 500;
    ap.seed = seed;
    sim::Device da;
    const par::GpuRunResult ra = par::RunParallelSa(da, instance, ap);

    par::ParallelSaSyncParams sp;
    sp.config = ap.config;
    sp.temperature_levels = static_cast<std::uint32_t>(gens / chain);
    sp.chain_length = chain;
    sp.temp_samples = 500;
    sp.seed = seed;
    sp.record_diversity = true;
    sim::Device ds;
    const par::GpuRunResult rs = par::RunParallelSaSync(ds, instance, sp);

    if (ra.best_cost <= rs.best_cost) ++async_quality_wins;
    table.AddRow({std::to_string(k), std::to_string(ra.best_cost),
                  std::to_string(rs.best_cost),
                  benchutil::FmtDouble(ra.device_seconds * 1e3, 2),
                  benchutil::FmtDouble(rs.device_seconds * 1e3, 2),
                  benchutil::FmtDouble(
                      rs.diversity.empty() ? 0.0 : rs.diversity.back(),
                      1)});
  }
  std::cout << table.ToString();
  std::cout << "\nasync quality wins/ties: " << async_quality_wins << "/"
            << instances << "\n";
  std::cout << "\nPaper claim vs this reproduction: the communication "
               "overhead (sync device time > async at equal budget) and "
               "the diversity collapse (final diversity << n) reproduce; "
               "the *quality* disadvantage of sync does not reproduce "
               "robustly at bench scales — our elitist broadcast often "
               "helps.  Recorded as a deviation in EXPERIMENTS.md §E10.\n";
  return 0;
}

/// \file bench_micro_rng.cpp
/// \brief RNG microbenchmarks: Philox4x32-10 (the cuRAND stand-in) vs
/// xoshiro256**, plus the paper's integer->[0,1] normalization and the
/// perturbation operator.

#include <benchmark/benchmark.h>

#include "core/sequence.hpp"
#include "rng/philox.hpp"

namespace {

void BM_Philox4x32(benchmark::State& state) {
  cdd::rng::Philox4x32 rng(42, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Philox4x32);

void BM_PhiloxUniformFloat(benchmark::State& state) {
  cdd::rng::Philox4x32 rng(42, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextUniform());
  }
}
BENCHMARK(BM_PhiloxUniformFloat);

void BM_Xoshiro256(benchmark::State& state) {
  cdd::rng::Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro256);

void BM_PhiloxSeek(benchmark::State& state) {
  cdd::rng::Philox4x32 rng(42, 7);
  std::uint64_t pos = 0;
  for (auto _ : state) {
    rng.Seek(pos += 997);
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_PhiloxSeek);

void BM_PartialFisherYates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cdd::rng::Philox4x32 rng(1, 2);
  cdd::Sequence seq = cdd::IdentitySequence(n);
  std::vector<std::uint32_t> positions(4);
  std::vector<cdd::JobId> values(4);
  for (auto _ : state) {
    cdd::PartialFisherYates(std::span<cdd::JobId>(seq), 4, rng,
                            std::span<std::uint32_t>(positions),
                            std::span<cdd::JobId>(values));
    benchmark::DoNotOptimize(seq.data());
  }
}
BENCHMARK(BM_PartialFisherYates)->Arg(50)->Arg(1000);

void BM_FullFisherYates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cdd::rng::Philox4x32 rng(1, 2);
  cdd::Sequence seq = cdd::IdentitySequence(n);
  for (auto _ : state) {
    cdd::FisherYates(std::span<cdd::JobId>(seq), rng);
    benchmark::DoNotOptimize(seq.data());
  }
}
BENCHMARK(BM_FullFisherYates)->Arg(50)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();

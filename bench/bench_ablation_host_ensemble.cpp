/// \file bench_ablation_host_ensemble.cpp
/// \brief Extension beyond the paper: the same asynchronous ensemble SA on
/// host threads (std::thread), compared against the modeled GPU run and
/// the single-chain serial baseline at matched evaluation budgets.
/// Answers "would a multicore CPU have been enough?" for the paper's
/// workloads.

#include <algorithm>
#include <iostream>
#include <thread>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/sweeps.hpp"
#include "cudasim/device.hpp"
#include "meta/host_ensemble.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Host-thread ensemble vs modeled GPU ensemble.\n"
                 "Flags: --sizes list --chains N --gens G --threads T "
                 "--seed S\n";
    return 0;
  }
  const std::vector<std::uint32_t> sizes =
      args.GetUintList("sizes", {50, 200});
  const auto chains = static_cast<std::uint32_t>(args.GetInt("chains", 64));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 500));
  const auto threads =
      static_cast<std::uint32_t>(args.GetInt("threads", 0));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  benchutil::Sweep sweep;
  sweep.seed = seed;

  std::cout << "=== Extension: host-thread ensemble SA vs modeled GPU "
               "ensemble (" << chains << " chains x " << gens
            << " generations, host threads: "
            << (threads == 0 ? std::thread::hardware_concurrency()
                             : threads)
            << ") ===\n";
  benchutil::TextTable table({"n", "host best", "host wall [s]",
                              "gpu best", "gpu modeled [s]",
                              "host evals", "gpu evals"});
  for (const std::uint32_t n : sizes) {
    const Instance instance =
        benchrun::MakeSweepInstance(Problem::kCdd, sweep, n, 0);
    const meta::Objective objective =
        meta::Objective::ForInstance(instance);

    meta::HostEnsembleParams host;
    host.chains = chains;
    host.threads = threads;
    host.chain.iterations = gens;
    host.chain.seed = seed;
    host.chain.temp_samples = 1000;
    const meta::RunResult host_result =
        meta::RunHostEnsembleSa(objective, host);

    sim::Device gpu;
    par::ParallelSaParams gpu_params;
    gpu_params.config =
        par::LaunchConfig::ForEnsemble(chains, std::min(chains, 64u));
    gpu_params.generations = gens;
    gpu_params.temp_samples = 1000;
    gpu_params.seed = seed;
    const par::GpuRunResult gpu_result =
        par::RunParallelSa(gpu, instance, gpu_params);

    table.AddRow({std::to_string(n), std::to_string(host_result.best_cost),
                  benchutil::FmtDouble(host_result.wall_seconds, 3),
                  std::to_string(gpu_result.best_cost),
                  benchutil::FmtDouble(gpu_result.device_seconds, 3),
                  std::to_string(host_result.evaluations),
                  std::to_string(gpu_result.evaluations)});
  }
  std::cout << table.ToString();
  std::cout << "\nNote: 'host wall' is real time on this machine; 'gpu "
               "modeled' is GT 560M device time from the calibrated "
               "model.  Quality differs only through RNG consumption "
               "(host chains draw one stream per chain, GPU chains one "
               "stream per kernel phase).\n";
  return 0;
}

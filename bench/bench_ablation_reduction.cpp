/// \file bench_ablation_reduction.cpp
/// \brief Section VI-D's design choice, quantified: the paper reduces the
/// ensemble best with one atomicMin per thread ("inside the L2-Cache ...
/// although the full process results in a sequential execution order").
/// This ablation compares it against the canonical shared-memory tree
/// reduction at several ensemble sizes — results are identical, only the
/// modeled time differs.

#include <iostream>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/sweeps.hpp"
#include "cudasim/device.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Reduction-kernel ablation (atomic vs tree).\n"
                 "Flags: --n JOBS --gens G --ensembles list --block B "
                 "--seed S\n";
    return 0;
  }
  const auto n = static_cast<std::uint32_t>(args.GetInt("n", 100));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 60));
  const auto block = static_cast<std::uint32_t>(args.GetInt("block", 192));
  const std::vector<std::uint32_t> ensembles =
      args.GetUintList("ensembles", {192, 768, 3072, 12288});
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  benchutil::Sweep sweep;
  sweep.seed = seed;
  const Instance instance =
      benchrun::MakeSweepInstance(Problem::kCdd, sweep, n, 0);

  std::cout << "=== Ablation: reduction kernel (atomic vs shared-memory "
               "tree), CDD n=" << n << ", " << gens
            << " generations ===\n";
  benchutil::TextTable table({"ensemble", "atomic [ms]", "tree [ms]",
                              "reduction share atomic",
                              "cost identical"});
  for (const std::uint32_t ensemble : ensembles) {
    double ms[2];
    double reduction_share = 0.0;
    Cost costs[2];
    const par::detail::ReductionKind kinds[2] = {
        par::detail::ReductionKind::kAtomic,
        par::detail::ReductionKind::kTree};
    for (int k = 0; k < 2; ++k) {
      sim::Device gpu(sim::GeForceGT560M());
      par::ParallelSaParams params;
      params.config = par::LaunchConfig::ForEnsemble(ensemble, block);
      params.generations = gens;
      params.temp_samples = 200;
      params.seed = seed;
      params.reduction = kinds[k];
      const par::GpuRunResult result =
          par::RunParallelSa(gpu, instance, params);
      ms[k] = result.device_seconds * 1e3;
      costs[k] = result.best_cost;
      if (k == 0) {
        const auto* rec = gpu.profiler().Find("sa_reduction");
        reduction_share =
            rec == nullptr ? 0.0
                           : rec->sim_time_s / result.device_seconds;
      }
    }
    table.AddRow({std::to_string(ensemble),
                  benchutil::FmtDouble(ms[0], 2),
                  benchutil::FmtDouble(ms[1], 2),
                  benchutil::FmtDouble(reduction_share * 100.0, 1) + " %",
                  costs[0] == costs[1] ? "yes" : "NO"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected: at the paper's 768 chains the atomic variant "
               "is fine (its serialization is tiny next to the fitness "
               "work — the paper's observation); the tree variant wins as "
               "the ensemble grows and the atomic queue becomes the "
               "critical path.\n";
  return 0;
}

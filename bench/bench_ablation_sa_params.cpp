/// \file bench_ablation_sa_params.cpp
/// \brief Experiment E12 — Section VI's parameter choices: cooling rate
/// mu = 0.88 ("inferred from our experiments over a range of cooling
/// rates") and perturbation size Pert = 4.  Regenerates both sweeps.

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/stats.hpp"
#include "benchutil/table.hpp"
#include "common/sweeps.hpp"
#include "cudasim/device.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "SA parameter ablation (mu sweep + Pert sweep).\n"
                 "Flags: --n JOBS --ensemble N --block B --gens G "
                 "--instances K --seed S\n";
    return 0;
  }
  const auto n = static_cast<std::uint32_t>(args.GetInt("n", 100));
  const auto ensemble =
      static_cast<std::uint32_t>(args.GetInt("ensemble", 128));
  const auto block = static_cast<std::uint32_t>(args.GetInt("block", 64));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 500));
  const auto instances =
      static_cast<std::uint32_t>(args.GetInt("instances", 4));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  benchutil::Sweep sweep;
  sweep.seed = seed;

  const auto run = [&](double mu, std::uint32_t pert) {
    benchutil::RunningStats costs;
    for (std::uint32_t k = 0; k < instances; ++k) {
      const Instance instance =
          benchrun::MakeSweepInstance(Problem::kCdd, sweep, n, k);
      par::ParallelSaParams params;
      params.config = par::LaunchConfig::ForEnsemble(ensemble, block);
      params.generations = gens;
      params.mu = mu;
      params.pert = pert;
      params.temp_samples = 500;
      params.seed = seed;
      sim::Device gpu;
      costs.Add(static_cast<double>(
          par::RunParallelSa(gpu, instance, params).best_cost));
    }
    return costs.mean();
  };

  std::cout << "=== Ablation: cooling rate mu (Pert = 4), CDD n=" << n
            << " ===\n";
  benchutil::TextTable mu_table({"mu", "mean best cost", "vs mu=0.88 [%]"});
  const double at_088 = run(0.88, 4);
  for (const double mu : {0.70, 0.80, 0.85, 0.88, 0.92, 0.95, 0.99}) {
    const double cost = mu == 0.88 ? at_088 : run(mu, 4);
    mu_table.AddRow({benchutil::FmtDouble(mu, 2),
                     benchutil::FmtDouble(cost, 1),
                     benchutil::FmtDouble((cost - at_088) / at_088 * 100.0,
                                          2)});
  }
  std::cout << mu_table.ToString();

  std::cout << "\n=== Ablation: perturbation size Pert (mu = 0.88) ===\n";
  benchutil::TextTable pert_table(
      {"Pert", "mean best cost", "vs Pert=4 [%]"});
  for (const std::uint32_t pert : {2u, 3u, 4u, 6u, 8u, 12u}) {
    const double cost = pert == 4 ? at_088 : run(0.88, pert);
    pert_table.AddRow({std::to_string(pert),
                       benchutil::FmtDouble(cost, 1),
                       benchutil::FmtDouble(
                           (cost - at_088) / at_088 * 100.0, 2)});
  }
  std::cout << pert_table.ToString();
  std::cout << "\nPaper shape to verify: a broad optimum around mu ~ 0.88 "
               "(too-fast cooling quenches, mu->1 never converges within "
               "the budget) and around Pert ~ 4 (1-2 barely moves, large "
               "Pert degenerates toward random restart).\n";
  return 0;
}

/// \file bench_serve_loadgen.cpp
/// \brief Closed-loop load generator for the SolverService.
///
/// A fixed set of client threads each runs submit -> wait -> repeat
/// against one service instance (closed loop: offered load adapts to
/// service capacity, so the numbers measure the service, not the feeder).
/// Sweeps the worker count and reports throughput, solve-latency
/// percentiles and cache hit rate per configuration — the serving
/// baseline for the perf trajectory.
///
/// A second mode sweeps the candidate-pool *placement* instead of the
/// worker count (experiment: results/exp_pool_backends.txt): one run per
/// pool backend, same traffic, reporting engine evaluations/sec plus the
/// pool-handoff counters — zero-copy lending means every host-side
/// placement avoids both staged copies a device round trip would cost.
///
///   bench_serve_loadgen                       # quick sweep
///   bench_serve_loadgen --workers 1,2,4,8 --requests 4000 --clients 16
///   bench_serve_loadgen --dup-frac 0.5        # cache-friendly traffic
///   bench_serve_loadgen --pool-backends host,pinned,device,numa \
///       --engine dpso --sizes 50,200,500 --dup-frac 0

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/stats.hpp"
#include "benchutil/table.hpp"
#include "core/pool_allocator.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "rng/philox.hpp"
#include "serve/service.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace cdd;

struct SweepResult {
  unsigned workers = 0;
  std::size_t requests = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  std::uint64_t rejected = 0;
  std::uint64_t evaluations = 0;     ///< objective calls across responses
  std::uint64_t pool_handoffs = 0;   ///< request pools lent to engines
  std::uint64_t staging_copies = 0;  ///< modeled copies the placement cost
  std::uint64_t preemptions = 0;     ///< priority preemptions at Step edges
};

SweepResult RunSweep(unsigned workers, unsigned clients,
                     std::size_t requests,
                     const std::vector<serve::SolveRequest>& pool,
                     double dup_frac, std::uint64_t seed,
                     const std::string& pool_backend = {},
                     std::uint64_t preempt_slice = 0) {
  serve::ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = std::max<std::size_t>(2 * clients, 16);
  config.cache_capacity = 4096;
  config.pool_backend = pool_backend;
  config.preempt_slice = preempt_slice;
  serve::SolverService service(config);

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> evaluations{0};
  const auto t_start = std::chrono::steady_clock::now();

  const auto client = [&](unsigned client_id) {
    rng::Philox4x32 rng(seed + client_id, /*stream=*/0x10adULL);
    for (;;) {
      const std::size_t k = next.fetch_add(1);
      if (k >= requests) break;
      // Re-offer an earlier request with probability dup_frac: the cache
      // traffic a fleet of similar campaigns would generate.
      serve::SolveRequest request =
          rng.NextUniform() < dup_frac
              ? pool[UniformBelow(
                    rng, static_cast<std::uint32_t>(pool.size() / 4 + 1))]
              : pool[k % pool.size()];
      request.id = k;
      for (;;) {
        std::future<serve::SolveResponse> future =
            service.Submit(request);
        const serve::SolveResponse response = future.get();
        if (response.status !=
            serve::SolveStatus::kRejectedQueueFull) {
          evaluations.fetch_add(response.result.evaluations,
                                std::memory_order_relaxed);
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) threads.emplace_back(client, c);
  for (std::thread& t : threads) t.join();

  SweepResult result;
  result.workers = workers;
  result.requests = requests;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  const serve::LatencyHistogram& solve_ms =
      service.metrics().histogram("solve_ms");
  result.p50_ms = solve_ms.Percentile(0.50);
  result.p95_ms = solve_ms.Percentile(0.95);
  result.p99_ms = solve_ms.Percentile(0.99);
  const serve::CacheStats cache = service.cache().stats();
  result.hit_rate = cache.hits + cache.misses == 0
                        ? 0.0
                        : static_cast<double>(cache.hits) /
                              static_cast<double>(cache.hits + cache.misses);
  result.rejected =
      service.metrics().counter("rejected_queue_full").value();
  result.evaluations = evaluations.load(std::memory_order_relaxed);
  result.pool_handoffs = service.metrics().counter("pool_handoffs").value();
  result.staging_copies =
      service.metrics().counter("pool_staging_copies").value();
  result.preemptions = service.metrics().counter("preemptions").value();
  service.Shutdown();
  return result;
}

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Closed-loop load generator for the solver service.\n"
                 "Flags: --workers LIST --clients C --requests N\n"
                 "       --dup-frac F --sizes LIST --gens G --seed S\n"
                 "       --engine NAME   engine every request runs "
                 "(default sa)\n"
                 "       --pool-backends LIST   sweep candidate-pool "
                 "placement\n"
                 "           (host,pinned,device,numa) instead of the "
                 "worker count\n"
                 "       --trace   enable runtime tracing during the sweep\n"
                 "                 (measures instrumentation overhead)\n"
                 "       --priorities L   spread requests over priority "
                 "levels 0..L-1\n"
                 "       --preempt-slice N   preemption check every N Step "
                 "units\n"
                 "           (0 = run-to-completion; with L > 1 this makes "
                 "priority\n"
                 "           preemptions observable in the counter column)\n";
    return 0;
  }

  // The tracing-overhead experiment: identical sweep with recording on vs
  // off quantifies what the instrumentation costs a hot serving path
  // (results/exp_serve_tracing_overhead.txt; the ISSUE budget is <5%).
  const bool tracing = args.GetBool("trace");
  trace::SetEnabled(tracing);

  const std::vector<std::uint32_t> worker_sweep =
      args.GetUintList("workers", {1, 2, 4, 8});
  const auto clients =
      static_cast<unsigned>(args.GetInt("clients", 8));
  const auto requests =
      static_cast<std::size_t>(args.GetInt("requests", 1500));
  const double dup_frac = args.GetDouble("dup-frac", 0.25);
  const std::vector<std::uint32_t> sizes =
      args.GetUintList("sizes", {20, 50});
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 200));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const std::string engine = args.GetString("engine", "sa");
  const std::vector<std::string> pool_backends =
      SplitCsv(args.GetString("pool-backends", ""));
  const auto priority_levels = static_cast<std::uint32_t>(
      std::max(1, static_cast<int>(args.GetInt("priorities", 1))));
  const auto preempt_slice =
      static_cast<std::uint64_t>(args.GetInt("preempt-slice", 0));

  // Unique request pool shared by all sweeps: serial SA over mixed-size
  // CDD instances (the cheap end of the engine table, so the sweep
  // exercises queue/pool/cache machinery rather than one long solve).
  const orlib::BiskupFeldmannGenerator gen(seed);
  std::vector<serve::SolveRequest> pool;
  const std::size_t pool_size = std::max<std::size_t>(requests / 2, 1);
  pool.reserve(pool_size);
  for (std::size_t u = 0; u < pool_size; ++u) {
    serve::SolveRequest request;
    request.instance = gen.Cdd(sizes[u % sizes.size()],
                               static_cast<std::uint32_t>(u),
                               0.2 + 0.2 * (u % 4));
    request.engine = engine;
    request.options.generations = gens;
    request.options.seed = seed;
    // Deterministic priority mix: scheduling-only, not part of the cache
    // key, so duplicates re-offered at the same level stay cache hits.
    request.priority =
        static_cast<int>(u % priority_levels);
    pool.push_back(std::move(request));
  }

  if (!pool_backends.empty()) {
    // Placement sweep: same traffic, one service per pool backend.  Each
    // lent pool on a host-side placement avoids the two staged copies
    // (H2D + D2H) a device round trip would model.
    const unsigned workers = worker_sweep.empty() ? 2 : worker_sweep[0];
    std::cout << "=== Candidate-pool placement sweep (" << clients
              << " clients, " << workers << " workers, " << requests
              << " requests/sweep, " << engine << "/" << gens << " gens, "
              << 100.0 * dup_frac << "% duplicate offers) ===\n";
    benchutil::TextTable table({"pool backend", "req/s", "evals/s",
                                "p50 [ms]", "p95 [ms]", "handoffs",
                                "staged copies", "copies avoided",
                                "cache hit %"});
    for (const std::string& backend : pool_backends) {
      core::PoolBackend parsed = core::PoolBackend::kHost;
      if (!core::ParsePoolBackend(backend, &parsed)) {
        std::cerr << "error: unknown pool backend '" << backend << "'\n";
        return 1;
      }
      const SweepResult r = RunSweep(workers, clients, requests, pool,
                                     dup_frac, seed, backend);
      const std::uint64_t avoided = 2 * r.pool_handoffs - r.staging_copies;
      table.AddRow(
          {backend,
           benchutil::FmtDouble(
               static_cast<double>(r.requests) / r.wall_seconds, 1),
           benchutil::FmtDouble(
               static_cast<double>(r.evaluations) / r.wall_seconds, 0),
           benchutil::FmtDouble(r.p50_ms, 2),
           benchutil::FmtDouble(r.p95_ms, 2),
           std::to_string(r.pool_handoffs),
           std::to_string(r.staging_copies), std::to_string(avoided),
           benchutil::FmtDouble(100.0 * r.hit_rate, 1)});
    }
    std::cout << table.ToString();
    std::cout << "\nNote: placement never changes results (the golden "
                 "manifest replays bit-identically under every backend); "
                 "it changes only where pool memory lives and what the "
                 "transfer model charges for each engine handoff.\n";
    return 0;
  }

  std::cout << "=== Serving baseline: closed-loop load generator ("
            << clients << " clients, " << requests << " requests/sweep, "
            << 100.0 * dup_frac << "% duplicate offers, " << engine << "/"
            << gens
            << " gens, tracing " << (tracing ? "ON" : "off") << ") ===\n";
  benchutil::TextTable table({"workers", "req/s", "wall [s]", "p50 [ms]",
                              "p95 [ms]", "p99 [ms]", "cache hit %",
                              "rejections", "preemptions"});
  for (const std::uint32_t workers : worker_sweep) {
    const SweepResult r = RunSweep(workers, clients, requests, pool,
                                   dup_frac, seed, {}, preempt_slice);
    table.AddRow({std::to_string(r.workers),
                  benchutil::FmtDouble(
                      static_cast<double>(r.requests) / r.wall_seconds, 1),
                  benchutil::FmtDouble(r.wall_seconds, 2),
                  benchutil::FmtDouble(r.p50_ms, 2),
                  benchutil::FmtDouble(r.p95_ms, 2),
                  benchutil::FmtDouble(r.p99_ms, 2),
                  benchutil::FmtDouble(100.0 * r.hit_rate, 1),
                  std::to_string(r.rejected),
                  std::to_string(r.preemptions)});
  }
  std::cout << table.ToString();
  std::cout << "\nNote: closed loop — each client waits for its response "
               "before offering the next request, so req/s is the "
               "service's sustainable throughput at this concurrency, "
               "and backpressure rejections are retried, never lost.\n";
  return 0;
}

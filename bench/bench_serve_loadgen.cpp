/// \file bench_serve_loadgen.cpp
/// \brief Closed-loop load generator for the SolverService.
///
/// A fixed set of client threads each runs submit -> wait -> repeat
/// against one service instance (closed loop: offered load adapts to
/// service capacity, so the numbers measure the service, not the feeder).
/// Sweeps the worker count and reports throughput, solve-latency
/// percentiles and cache hit rate per configuration — the serving
/// baseline for the perf trajectory.  With --socket the same traffic
/// travels through the TCP front-end (serve/net), so the sweep measures
/// the full wire path: framing, the epoll loop, and response fan-out.
///
/// A second mode sweeps the candidate-pool *placement* instead of the
/// worker count (experiment: results/exp_pool_backends.txt): one run per
/// pool backend, same traffic, reporting engine evaluations/sec plus the
/// pool-handoff counters — zero-copy lending means every host-side
/// placement avoids both staged copies a device round trip would cost.
///
/// --smoke replaces the sweep with three deterministic overload/coalesce
/// assertions (the CI gate for the serve scale-out path): single-flight
/// duplicates receive one bit-identical solve, overload sheds the
/// lowest-priority work first, and a manifest written through the socket
/// front-end is byte-identical to one written in-process.
///
///   bench_serve_loadgen                       # quick sweep
///   bench_serve_loadgen --workers 1,2,4,8 --requests 4000 --clients 16
///   bench_serve_loadgen --dup-frac 0.5        # cache-friendly traffic
///   bench_serve_loadgen --socket --watermarks 8:32 --json BENCH_serve.json
///   bench_serve_loadgen --smoke               # deterministic assertions
///   bench_serve_loadgen --pool-backends host,pinned,device,numa \
///       --engine dpso --sizes 50,200,500 --dup-frac 0

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/stats.hpp"
#include "benchutil/table.hpp"
#include "core/pool_allocator.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "rng/philox.hpp"
#include "serve/net/client.hpp"
#include "serve/net/front_end.hpp"
#include "serve/service.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace cdd;

struct SweepResult {
  unsigned workers = 0;
  std::size_t requests = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;            ///< kShedOverload answers (watermarks)
  std::uint64_t coalesced = 0;       ///< duplicates joined onto a flight
  std::uint64_t evaluations = 0;     ///< objective calls across responses
  std::uint64_t pool_handoffs = 0;   ///< request pools lent to engines
  std::uint64_t staging_copies = 0;  ///< modeled copies the placement cost
  std::uint64_t preemptions = 0;     ///< priority preemptions at Step edges
};

struct SweepSetup {
  unsigned workers = 2;
  unsigned clients = 8;
  std::size_t requests = 1000;
  double dup_frac = 0.25;
  std::uint64_t seed = 1;
  std::string pool_backend;
  std::uint64_t preempt_slice = 0;
  bool socket = false;            ///< drive through the TCP front-end
  std::size_t shed_low = 0;       ///< admission watermarks (0 = off)
  std::size_t shed_high = 0;
};

SweepResult RunSweep(const SweepSetup& setup,
                     const std::vector<serve::SolveRequest>& pool) {
  serve::ServiceConfig config;
  config.workers = setup.workers;
  config.queue_capacity = std::max<std::size_t>(2 * setup.clients, 16);
  config.cache_capacity = 4096;
  config.pool_backend = setup.pool_backend;
  config.preempt_slice = setup.preempt_slice;
  config.shed_low_watermark = setup.shed_low;
  config.shed_high_watermark = setup.shed_high;
  serve::SolverService service(config);
  std::optional<serve::net::FrontEnd> front_end;
  if (setup.socket) {
    serve::net::FrontEndConfig net;
    net.port = 0;  // ephemeral; every client reads it back below
    net.max_conns = setup.clients + 4;
    front_end.emplace(net, service);
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> evaluations{0};
  const auto t_start = std::chrono::steady_clock::now();

  const auto client = [&](unsigned client_id) {
    rng::Philox4x32 rng(setup.seed + client_id, /*stream=*/0x10adULL);
    std::optional<serve::net::BlockingClient> wire;
    if (front_end) wire.emplace("127.0.0.1", front_end->port());
    for (;;) {
      const std::size_t k = next.fetch_add(1);
      if (k >= setup.requests) break;
      // Re-offer an earlier request with probability dup_frac: the cache
      // traffic a fleet of similar campaigns would generate.
      serve::SolveRequest request =
          rng.NextUniform() < setup.dup_frac
              ? pool[UniformBelow(
                    rng, static_cast<std::uint32_t>(pool.size() / 4 + 1))]
              : pool[k % pool.size()];
      request.id = k;
      for (;;) {
        const serve::SolveResponse response =
            wire ? wire->Call(request) : service.Submit(request).get();
        if (response.status !=
            serve::SolveStatus::kRejectedQueueFull) {
          evaluations.fetch_add(response.result.evaluations,
                                std::memory_order_relaxed);
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(setup.clients);
  for (unsigned c = 0; c < setup.clients; ++c) {
    threads.emplace_back(client, c);
  }
  for (std::thread& t : threads) t.join();

  SweepResult result;
  result.workers = setup.workers;
  result.requests = setup.requests;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  const serve::LatencyHistogram& solve_ms =
      service.metrics().histogram("solve_ms");
  result.p50_ms = solve_ms.Percentile(0.50);
  result.p95_ms = solve_ms.Percentile(0.95);
  result.p99_ms = solve_ms.Percentile(0.99);
  const serve::CacheStats cache = service.cache().stats();
  result.hit_rate = cache.hits + cache.misses == 0
                        ? 0.0
                        : static_cast<double>(cache.hits) /
                              static_cast<double>(cache.hits + cache.misses);
  result.rejected =
      service.metrics().counter("rejected_queue_full").value();
  result.shed = service.metrics().counter("shed_overload").value();
  result.coalesced = service.metrics().counter("coalesced_joins").value();
  result.evaluations = evaluations.load(std::memory_order_relaxed);
  result.pool_handoffs = service.metrics().counter("pool_handoffs").value();
  result.staging_copies =
      service.metrics().counter("pool_staging_copies").value();
  result.preemptions = service.metrics().counter("preemptions").value();
  front_end.reset();  // stop the listener before draining the service
  service.Shutdown();
  return result;
}

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// ---------------------------------------------------------------------------
// --smoke: deterministic assertions for the serve scale-out path.

/// Gate an engine can block on: the smoke tests park the single worker on
/// a "block" solve so every subsequent arrival is observed *queued*, which
/// makes coalescing and shedding decisions deterministic.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<unsigned> entered{0};

  void Release() {
    {
      const std::scoped_lock lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

/// Default registry plus a "block" engine that parks until gate->Release().
serve::EngineRegistry BlockingRegistry(Gate* gate) {
  serve::EngineRegistry registry = serve::EngineRegistry::Default();
  registry.Register(
      "block",
      [gate](const Instance& instance, const serve::EngineOptions&) {
        gate->entered.fetch_add(1);
        gate->Wait();
        serve::EngineRun run;
        run.result.best = IdentitySequence(instance.size());
        run.result.best_cost = 0;
        run.result.evaluations = 1;
        return run;
      });
  return registry;
}

bool AwaitCounter(serve::SolverService& service, const char* name,
                  std::uint64_t at_least) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.metrics().counter(name).value() < at_least) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

struct SmokeChecker {
  bool ok = true;
  void Check(bool condition, const std::string& what) {
    std::cout << (condition ? "  PASS  " : "  FAIL  ") << what << "\n";
    ok = ok && condition;
  }
};

/// Duplicate-heavy traffic through the socket: with the worker parked,
/// four concurrent identical requests must produce exactly one solve; the
/// three joiners receive the leader's bit-identical result.
void SmokeCoalesce(SmokeChecker& smoke,
                   const orlib::BiskupFeldmannGenerator& gen) {
  std::cout << "[smoke] single-flight coalescing over the socket\n";
  Gate gate;
  const serve::EngineRegistry registry = BlockingRegistry(&gate);
  serve::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  serve::SolverService service(config, registry);
  serve::net::FrontEndConfig net;
  net.port = 0;
  serve::net::FrontEnd front_end(net, service);

  serve::SolveRequest blocker;
  blocker.id = 99;
  blocker.instance = gen.Cdd(20, 999, 0.2);
  blocker.engine = "block";
  std::future<serve::SolveResponse> parked = service.Submit(blocker);
  while (gate.entered.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  serve::SolveRequest duplicate;
  duplicate.instance = gen.Cdd(20, 0, 0.4);
  duplicate.engine = "sa";
  duplicate.options.generations = 300;
  duplicate.options.seed = 7;

  constexpr unsigned kClients = 4;
  std::vector<serve::SolveResponse> responses(kClients);
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::net::BlockingClient wire("127.0.0.1", front_end.port());
      serve::SolveRequest request = duplicate;
      request.id = c + 1;
      responses[c] = wire.Call(request);
    });
  }
  // All four are in flight (worker parked): one led, three joined.
  const bool joined = AwaitCounter(service, "coalesced_joins", kClients - 1);
  gate.Release();
  for (std::thread& t : clients) t.join();
  parked.get();

  smoke.Check(joined, "three duplicates joined the in-flight leader");
  unsigned coalesced = 0;
  bool identical = true;
  for (const serve::SolveResponse& r : responses) {
    if (r.coalesced) ++coalesced;
    identical = identical && r.status == serve::SolveStatus::kOk &&
                r.result.best == responses[0].result.best &&
                r.result.best_cost == responses[0].result.best_cost &&
                r.result.evaluations == responses[0].result.evaluations;
  }
  smoke.Check(coalesced == kClients - 1,
              "exactly three responses flagged coalesced (got " +
                  std::to_string(coalesced) + ")");
  smoke.Check(identical, "all four responses carry the identical result");
  const std::uint64_t completed =
      service.metrics().counter("completed").value();
  smoke.Check(completed == 2,
              "one solve per unique key: completed == 2 (blocker + "
              "leader), got " +
                  std::to_string(completed));
  front_end.Stop();
  service.Shutdown();
}

/// Overload ramp through one pipelined connection: past the high
/// watermark the three lowest-priority requests — and only those — are
/// answered kShedOverload; the survivors then solve highest-first.
void SmokeShedOrder(SmokeChecker& smoke,
                    const orlib::BiskupFeldmannGenerator& gen) {
  std::cout << "[smoke] overload sheds lowest-priority first\n";
  Gate gate;
  const serve::EngineRegistry registry = BlockingRegistry(&gate);
  serve::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.cache_capacity = 0;
  config.shed_low_watermark = 1;
  config.shed_high_watermark = 4;
  serve::SolverService service(config, registry);
  serve::net::FrontEndConfig net;
  net.port = 0;
  serve::net::FrontEnd front_end(net, service);

  serve::SolveRequest blocker;
  blocker.id = 99;
  blocker.instance = gen.Cdd(20, 999, 0.2);
  blocker.engine = "block";
  std::future<serve::SolveResponse> parked = service.Submit(blocker);
  while (gate.entered.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Arrival order fills the queue to the high watermark (4), then offers
  // two lower-priority requests (shed on arrival) and one higher-priority
  // request (displaces the queued priority-2 victim).
  const std::vector<int> priorities = {5, 4, 3, 2, 1, 0, 6};
  std::map<std::uint64_t, int> priority_of;
  serve::net::BlockingClient wire("127.0.0.1", front_end.port());
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    serve::SolveRequest request;
    request.id = 10 + i;
    request.instance =
        gen.Cdd(20, static_cast<std::uint32_t>(i), 0.2 + 0.1 * (i % 3));
    request.engine = "sa";
    request.options.generations = 100;
    request.options.seed = 3;
    request.priority = priorities[i];
    priority_of[request.id] = priorities[i];
    wire.Send(request);  // pipelined: one connection, in-order arrival
  }

  // The three sheds answer immediately (the worker is parked, so nothing
  // else can complete); ids 14 (prio 1) and 15 (prio 0) are shed on
  // arrival, id 13 (prio 2) is displaced when priority 6 arrives.
  std::vector<int> shed_priorities;
  bool all_shed_status = true;
  for (int i = 0; i < 3; ++i) {
    const serve::SolveResponse r = wire.Receive();
    all_shed_status =
        all_shed_status && r.status == serve::SolveStatus::kShedOverload;
    shed_priorities.push_back(priority_of[r.id]);
  }
  std::sort(shed_priorities.begin(), shed_priorities.end());
  smoke.Check(all_shed_status, "all three dropped answers are shed_overload");
  smoke.Check((shed_priorities == std::vector<int>{0, 1, 2}),
              "the shed set is exactly the three lowest priorities");
  smoke.Check(service.metrics().counter("shed_overload").value() == 3,
              "shed_overload counter == 3");

  gate.Release();
  parked.get();
  // Survivors complete strictly highest-priority-first on the lone worker.
  std::vector<std::uint64_t> completion_order;
  for (int i = 0; i < 4; ++i) completion_order.push_back(wire.Receive().id);
  smoke.Check(
      (completion_order == std::vector<std::uint64_t>{16, 10, 11, 12}),
      "survivors solved highest-priority-first (6, 5, 4, 3)");
  front_end.Stop();
  service.Shutdown();
}

/// The replay guarantee through the wire: a manifest recorded behind the
/// socket front-end is byte-identical to one recorded in-process.
void SmokeManifestParity(SmokeChecker& smoke,
                         const orlib::BiskupFeldmannGenerator& gen) {
  std::cout << "[smoke] manifest parity: in-process vs socket\n";
  std::vector<serve::SolveRequest> requests;
  for (std::uint32_t i = 0; i < 6; ++i) {
    serve::SolveRequest request;
    request.id = i;
    request.instance = gen.Cdd(20, i, 0.2 + 0.1 * (i % 4));
    request.engine = "sa";
    request.options.generations = 150;
    request.options.seed = 5;
    requests.push_back(std::move(request));
  }

  const std::string tag = std::to_string(::getpid());
  const std::string path_inproc =
      "/tmp/cdd_serve_smoke_inproc." + tag + ".jsonl";
  const std::string path_socket =
      "/tmp/cdd_serve_smoke_socket." + tag + ".jsonl";

  {
    serve::ServiceConfig config;
    config.workers = 1;
    config.manifest_path = path_inproc;
    serve::SolverService service(config);
    for (const serve::SolveRequest& request : requests) {
      service.Submit(request).get();
    }
    service.Shutdown();
  }
  {
    serve::ServiceConfig config;
    config.workers = 1;
    config.manifest_path = path_socket;
    serve::SolverService service(config);
    serve::net::FrontEndConfig net;
    net.port = 0;
    serve::net::FrontEnd front_end(net, service);
    serve::net::BlockingClient wire("127.0.0.1", front_end.port());
    for (const serve::SolveRequest& request : requests) {
      wire.Call(request);
    }
    front_end.Stop();
    service.Shutdown();
  }

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string inproc = slurp(path_inproc);
  const std::string socket = slurp(path_socket);
  smoke.Check(!inproc.empty(), "in-process run recorded a manifest");
  smoke.Check(inproc == socket,
              "socket-path manifest is byte-identical to in-process");
  std::remove(path_inproc.c_str());
  std::remove(path_socket.c_str());
}

int RunSmoke(std::uint64_t seed) {
  const orlib::BiskupFeldmannGenerator gen(seed);
  SmokeChecker smoke;
  SmokeCoalesce(smoke, gen);
  SmokeShedOrder(smoke, gen);
  SmokeManifestParity(smoke, gen);
  std::cout << (smoke.ok ? "smoke: all serve scale-out assertions passed\n"
                         : "smoke: FAILURES above\n");
  return smoke.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Closed-loop load generator for the solver service.\n"
                 "Flags: --workers LIST --clients C --requests N\n"
                 "       --dup-frac F --sizes LIST --gens G --seed S\n"
                 "       --engine NAME   engine every request runs "
                 "(default sa)\n"
                 "       --socket   drive the traffic through the TCP "
                 "front-end\n"
                 "           (serve/net): framing + epoll loop on the "
                 "measured path\n"
                 "       --watermarks LOW:HIGH   admission-control "
                 "watermarks\n"
                 "           (absolute queue depths; enables load "
                 "shedding)\n"
                 "       --json PATH   also write the sweep as JSON "
                 "(e.g. BENCH_serve.json)\n"
                 "       --smoke   run the deterministic overload/coalesce "
                 "assertions\n"
                 "           (single-flight, shed order, manifest parity) "
                 "and exit\n"
                 "       --pool-backends LIST   sweep candidate-pool "
                 "placement\n"
                 "           (host,pinned,device,numa) instead of the "
                 "worker count\n"
                 "       --trace   enable runtime tracing during the sweep\n"
                 "                 (measures instrumentation overhead)\n"
                 "       --priorities L   spread requests over priority "
                 "levels 0..L-1\n"
                 "       --preempt-slice N   preemption check every N Step "
                 "units\n"
                 "           (0 = run-to-completion; with L > 1 this makes "
                 "priority\n"
                 "           preemptions observable in the counter column)\n";
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  if (args.GetBool("smoke")) return RunSmoke(seed);

  // The tracing-overhead experiment: identical sweep with recording on vs
  // off quantifies what the instrumentation costs a hot serving path
  // (results/exp_serve_tracing_overhead.txt; the ISSUE budget is <5%).
  const bool tracing = args.GetBool("trace");
  trace::SetEnabled(tracing);

  const std::vector<std::uint32_t> worker_sweep =
      args.GetUintList("workers", {1, 2, 4, 8});
  const auto clients =
      static_cast<unsigned>(args.GetInt("clients", 8));
  const auto requests =
      static_cast<std::size_t>(args.GetInt("requests", 1500));
  const double dup_frac = args.GetDouble("dup-frac", 0.25);
  const std::vector<std::uint32_t> sizes =
      args.GetUintList("sizes", {20, 50});
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 200));
  const std::string engine = args.GetString("engine", "sa");
  const std::vector<std::string> pool_backends =
      SplitCsv(args.GetString("pool-backends", ""));
  const auto priority_levels = static_cast<std::uint32_t>(
      std::max(1, static_cast<int>(args.GetInt("priorities", 1))));
  const auto preempt_slice =
      static_cast<std::uint64_t>(args.GetInt("preempt-slice", 0));
  const bool socket = args.GetBool("socket");
  const std::string json_path = args.GetString("json", "");

  std::size_t shed_low = 0;
  std::size_t shed_high = 0;
  const std::string watermarks = args.GetString("watermarks", "");
  if (!watermarks.empty()) {
    const std::size_t colon = watermarks.find(':');
    try {
      if (colon == std::string::npos) throw std::invalid_argument("");
      shed_low = std::stoul(watermarks.substr(0, colon));
      shed_high = std::stoul(watermarks.substr(colon + 1));
      if (shed_high == 0) throw std::invalid_argument("");
    } catch (const std::exception&) {
      std::cerr << "error: --watermarks expects LOW:HIGH with HIGH > 0, "
                   "got '"
                << watermarks << "'\n";
      return 1;
    }
  }

  // Unique request pool shared by all sweeps: serial SA over mixed-size
  // CDD instances (the cheap end of the engine table, so the sweep
  // exercises queue/pool/cache machinery rather than one long solve).
  const orlib::BiskupFeldmannGenerator gen(seed);
  std::vector<serve::SolveRequest> pool;
  const std::size_t pool_size = std::max<std::size_t>(requests / 2, 1);
  pool.reserve(pool_size);
  for (std::size_t u = 0; u < pool_size; ++u) {
    serve::SolveRequest request;
    request.instance = gen.Cdd(sizes[u % sizes.size()],
                               static_cast<std::uint32_t>(u),
                               0.2 + 0.2 * (u % 4));
    request.engine = engine;
    request.options.generations = gens;
    request.options.seed = seed;
    // Deterministic priority mix: scheduling-only, not part of the cache
    // key, so duplicates re-offered at the same level stay cache hits.
    request.priority =
        static_cast<int>(u % priority_levels);
    pool.push_back(std::move(request));
  }

  SweepSetup setup;
  setup.clients = clients;
  setup.requests = requests;
  setup.dup_frac = dup_frac;
  setup.seed = seed;
  setup.preempt_slice = preempt_slice;
  setup.socket = socket;
  setup.shed_low = shed_low;
  setup.shed_high = shed_high;

  if (!pool_backends.empty()) {
    // Placement sweep: same traffic, one service per pool backend.  Each
    // lent pool on a host-side placement avoids the two staged copies
    // (H2D + D2H) a device round trip would model.
    setup.workers = worker_sweep.empty() ? 2 : worker_sweep[0];
    std::cout << "=== Candidate-pool placement sweep (" << clients
              << " clients, " << setup.workers << " workers, " << requests
              << " requests/sweep, " << engine << "/" << gens << " gens, "
              << 100.0 * dup_frac << "% duplicate offers) ===\n";
    benchutil::TextTable table({"pool backend", "req/s", "evals/s",
                                "p50 [ms]", "p95 [ms]", "handoffs",
                                "staged copies", "copies avoided",
                                "cache hit %"});
    for (const std::string& backend : pool_backends) {
      core::PoolBackend parsed = core::PoolBackend::kHost;
      if (!core::ParsePoolBackend(backend, &parsed)) {
        std::cerr << "error: unknown pool backend '" << backend << "'\n";
        return 1;
      }
      setup.pool_backend = backend;
      const SweepResult r = RunSweep(setup, pool);
      const std::uint64_t avoided = 2 * r.pool_handoffs - r.staging_copies;
      table.AddRow(
          {backend,
           benchutil::FmtDouble(
               static_cast<double>(r.requests) / r.wall_seconds, 1),
           benchutil::FmtDouble(
               static_cast<double>(r.evaluations) / r.wall_seconds, 0),
           benchutil::FmtDouble(r.p50_ms, 2),
           benchutil::FmtDouble(r.p95_ms, 2),
           std::to_string(r.pool_handoffs),
           std::to_string(r.staging_copies), std::to_string(avoided),
           benchutil::FmtDouble(100.0 * r.hit_rate, 1)});
    }
    std::cout << table.ToString();
    std::cout << "\nNote: placement never changes results (the golden "
                 "manifest replays bit-identically under every backend); "
                 "it changes only where pool memory lives and what the "
                 "transfer model charges for each engine handoff.\n";
    return 0;
  }

  std::cout << "=== Serving baseline: closed-loop load generator ("
            << clients << " clients, " << requests << " requests/sweep, "
            << 100.0 * dup_frac << "% duplicate offers, " << engine << "/"
            << gens << " gens, " << (socket ? "socket" : "in-process")
            << " path, tracing " << (tracing ? "ON" : "off") << ") ===\n";
  benchutil::TextTable table({"workers", "req/s", "wall [s]", "p50 [ms]",
                              "p95 [ms]", "p99 [ms]", "cache hit %",
                              "rejections", "shed", "coalesced",
                              "preemptions"});
  std::vector<SweepResult> sweep_results;
  for (const std::uint32_t workers : worker_sweep) {
    setup.workers = workers;
    const SweepResult r = RunSweep(setup, pool);
    sweep_results.push_back(r);
    table.AddRow({std::to_string(r.workers),
                  benchutil::FmtDouble(
                      static_cast<double>(r.requests) / r.wall_seconds, 1),
                  benchutil::FmtDouble(r.wall_seconds, 2),
                  benchutil::FmtDouble(r.p50_ms, 2),
                  benchutil::FmtDouble(r.p95_ms, 2),
                  benchutil::FmtDouble(r.p99_ms, 2),
                  benchutil::FmtDouble(100.0 * r.hit_rate, 1),
                  std::to_string(r.rejected), std::to_string(r.shed),
                  std::to_string(r.coalesced),
                  std::to_string(r.preemptions)});
  }
  std::cout << table.ToString();
  std::cout << "\nNote: closed loop — each client waits for its response "
               "before offering the next request, so req/s is the "
               "service's sustainable throughput at this concurrency, "
               "and backpressure rejections are retried, never lost.\n";

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"serve_loadgen\",\n  \"clients\": " << clients
         << ",\n  \"requests\": " << requests
         << ",\n  \"dup_frac\": " << dup_frac << ",\n  \"engine\": \""
         << engine << "\",\n  \"gens\": " << gens
         << ",\n  \"socket\": " << (socket ? "true" : "false")
         << ",\n  \"watermarks\": [" << shed_low << ", " << shed_high
         << "],\n  \"results\": [\n";
    for (std::size_t i = 0; i < sweep_results.size(); ++i) {
      const SweepResult& r = sweep_results[i];
      json << "    {\"workers\": " << r.workers << ", \"req_per_s\": "
           << benchutil::FmtDouble(
                  static_cast<double>(r.requests) / r.wall_seconds, 1)
           << ", \"wall_s\": " << benchutil::FmtDouble(r.wall_seconds, 3)
           << ", \"p50_ms\": " << benchutil::FmtDouble(r.p50_ms, 3)
           << ", \"p95_ms\": " << benchutil::FmtDouble(r.p95_ms, 3)
           << ", \"p99_ms\": " << benchutil::FmtDouble(r.p99_ms, 3)
           << ", \"cache_hit\": " << benchutil::FmtDouble(r.hit_rate, 4)
           << ", \"rejected\": " << r.rejected << ", \"shed\": " << r.shed
           << ", \"coalesced\": " << r.coalesced
           << ", \"preemptions\": " << r.preemptions << "}"
           << (i + 1 < sweep_results.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

/// \file bench_table2_cdd_deviation.cpp
/// \brief Experiment E2 — Table II and Figure 12 of the paper: average
/// percentage deviation of the four parallel algorithms for the CDD,
/// relative to the serial-CPU best-known reference.
///
/// Default: a reduced sweep that finishes in minutes on one core.
/// --paper selects the full Section VIII configuration (sizes to 1000,
/// 40 instances per size, 768 chains, 1000/5000 generations).

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "common/paper_data.hpp"
#include "common/report.hpp"
#include "common/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Regenerates Table II / Figure 12 (CDD %Delta).\n"
                 "Flags: --paper --sizes a,b,c --instances K --ensemble N "
                 "--block B --gens-low G --gens-high G --seed S\n";
    return 0;
  }
  const benchutil::Sweep sweep = benchutil::Sweep::FromArgs(args);

  std::cout << "=== Table II / Fig 12: CDD average %Delta vs serial "
               "best-known ===\n";
  std::cout << "sweep: " << sweep.Describe() << "\n";
  std::cout << "reference: serial SA x" << sweep.ref_restarts << " + TA, "
            << sweep.ref_iterations << " iterations each (stand-in for "
            << "Lässig et al. [7])\n\n";

  const auto rows =
      benchrun::RunQualitySweep(Problem::kCdd, sweep, std::cout);
  std::cout << "\n";
  benchrun::PrintQualityTable(rows, benchdata::kPaperTable2);
  if (args.Has("csv")) {
    benchrun::WriteQualityCsv(args.GetString("csv", "table2.csv"), rows);
  }
  std::cout << "\nFig 12 (mean %Delta, bar chart):\n";
  benchrun::PrintDeviationChart(rows);
  std::cout << "\nPaper shape to verify: SA deviations stay within ~2%; "
               "DPSO deteriorates sharply for n >= 100; the high-budget "
               "variants dominate the low-budget ones.\n";
  return 0;
}

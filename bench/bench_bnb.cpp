/// \file bench_bnb.cpp
/// \brief Exact-tier throughput: branch-and-bound nodes/sec and
/// time-to-proof.
///
/// The heuristic benches report deviation against a best-known cost; the
/// exact tier's currency is different — how fast the search disposes of
/// nodes and how long a full optimality proof takes.  This bench runs
/// BranchAndBound over a size sweep of restricted CDD, unrestricted CDD
/// and UCDDCP instances, once single-worker (the deterministic serve
/// default) and once at the hardware worker cap, and records nodes/sec,
/// time-to-proof and the frontier speedup.
///
///   bench_bnb [--sizes 12,14,16] [--seed 1] [--json BENCH_bnb.json]
///             [--smoke]
///
/// --smoke shrinks the sweep to n <= 10 and verifies every run proves
/// optimality (lower bound == cost) — exit 1 otherwise; no JSON.  The
/// full run writes BENCH_bnb.json; results/exp_bnb.txt captures the
/// stdout table.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/test_instances.hpp"
#include "core/instance.hpp"
#include "cudasim/exec/backend.hpp"
#include "exact/bnb.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct CaseResult {
  std::string kind;
  std::uint32_t n = 0;
  cdd::Cost cost = 0;
  bool proven = false;
  std::uint64_t nodes_serial = 0;
  double seconds_serial = 0;
  double seconds_parallel = 0;
  double nodes_per_sec_serial = 0;
  double speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Branch-and-bound nodes/sec and time-to-proof over a size "
                 "sweep.\nFlags: --sizes list --seed S --json PATH "
                 "--smoke\n";
    return 0;
  }
  const bool smoke = args.GetBool("smoke");
  const std::vector<std::uint32_t> sizes =
      smoke ? std::vector<std::uint32_t>{8, 10}
            : args.GetUintList("sizes", {12, 14, 16});
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const std::string json_path = args.GetString("json", "BENCH_bnb.json");
  const unsigned hw_workers = sim::exec::ActiveExecWorkers();

  std::cout << "=== Branch-and-bound exact tier (workers 1 vs "
            << hw_workers << (smoke ? ", smoke" : "") << ") ===\n";
  benchutil::TextTable table({"case", "n", "cost", "proven", "nodes",
                              "nodes/s", "t(1w) s", "t(" +
                                  std::to_string(hw_workers) + "w) s",
                              "speedup"});
  std::vector<CaseResult> results;
  bool all_proven = true;

  struct Kind {
    const char* name;
    double h;
    bool controllable;
  };
  const Kind kinds[] = {{"cdd-restricted", 0.6, false},
                        {"cdd-unrestricted", 1.2, false},
                        {"ucddcp", 1.2, true}};

  for (const Kind& kind : kinds) {
    for (const std::uint32_t n : sizes) {
      const Instance instance =
          kind.controllable
              ? testing::RandomUcddcp(n, kind.h, seed + n)
              : testing::RandomCdd(n, kind.h, seed + n);

      exact::BnbParams serial;
      serial.workers = 1;
      serial.seed = seed;
      const Clock::time_point t0 = Clock::now();
      const exact::BnbResult one = exact::BranchAndBound(instance, serial);
      const Clock::time_point t1 = Clock::now();

      exact::BnbParams wide;
      wide.workers = hw_workers;
      wide.seed = seed;
      const Clock::time_point t2 = Clock::now();
      const exact::BnbResult many = exact::BranchAndBound(instance, wide);
      const Clock::time_point t3 = Clock::now();

      if (!one.proven_optimal || one.lower_bound != one.cost ||
          many.cost != one.cost) {
        all_proven = false;
      }

      CaseResult row;
      row.kind = kind.name;
      row.n = n;
      row.cost = one.cost;
      row.proven = one.proven_optimal && many.proven_optimal;
      row.nodes_serial = one.nodes_expanded;
      row.seconds_serial = Seconds(t0, t1);
      row.seconds_parallel = Seconds(t2, t3);
      row.nodes_per_sec_serial =
          row.seconds_serial > 0
              ? static_cast<double>(row.nodes_serial) / row.seconds_serial
              : 0;
      row.speedup = row.seconds_parallel > 0
                        ? row.seconds_serial / row.seconds_parallel
                        : 0;
      results.push_back(row);
      table.AddRow({row.kind, std::to_string(n), std::to_string(row.cost),
                    row.proven ? "yes" : "NO",
                    std::to_string(row.nodes_serial),
                    benchutil::FmtDouble(row.nodes_per_sec_serial, 0),
                    benchutil::FmtDouble(row.seconds_serial, 4),
                    benchutil::FmtDouble(row.seconds_parallel, 4),
                    benchutil::FmtDouble(row.speedup, 2)});
    }
  }
  std::cout << table.ToString();

  if (!all_proven) {
    std::cerr << "FAIL: a run missed its optimality proof or worker "
                 "counts disagreed on the optimum\n";
    return 1;
  }
  if (smoke) {
    std::cout << "\nsmoke: every instance proven optimal, serial and "
                 "parallel searches agree\n";
    return 0;
  }

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  json << "{\n  \"bench\": \"bnb\",\n  \"seed\": " << seed
       << ",\n  \"workers_parallel\": " << hw_workers
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    json << "    {\"case\": \"" << r.kind << "\", \"n\": " << r.n
         << ", \"cost\": " << r.cost
         << ", \"proven\": " << (r.proven ? "true" : "false")
         << ", \"nodes\": " << r.nodes_serial
         << ", \"nodes_per_sec\": "
         << benchutil::FmtDouble(r.nodes_per_sec_serial, 0)
         << ", \"time_to_proof_serial_sec\": "
         << benchutil::FmtDouble(r.seconds_serial, 6)
         << ", \"time_to_proof_parallel_sec\": "
         << benchutil::FmtDouble(r.seconds_parallel, 6)
         << ", \"speedup\": " << benchutil::FmtDouble(r.speedup, 3) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

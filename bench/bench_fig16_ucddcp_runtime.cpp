/// \file bench_fig16_ucddcp_runtime.cpp
/// \brief Experiment E7 — Figure 16: runtimes of the four parallel UCDDCP
/// algorithms (modeled GT 560M seconds) and the serial CPU baseline.

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "common/report.hpp"
#include "common/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Regenerates Figure 16 (UCDDCP runtime curves).\n"
                 "Flags: --paper --sizes a,b,c --ensemble N --block B "
                 "--gens-low G --gens-high G --seed S\n";
    return 0;
  }
  benchutil::Sweep sweep = benchutil::Sweep::FromArgs(args);
  if (!args.Has("sizes") && !args.GetBool("paper")) {
    sweep.sizes = {10, 20, 50, 100, 200, 500, 1000};
  }
  // Runtime/speed-up calibration is cheap (short real runs, analytic
  // extrapolation), so default to the paper's launch configuration.
  if (!args.Has("ensemble")) sweep.ensemble = 768;
  if (!args.Has("block")) sweep.block_size = 192;
  if (!args.Has("gens-low")) sweep.gens_low = 1000;
  if (!args.Has("gens-high")) sweep.gens_high = 5000;

  std::cout << "=== Fig 16: UCDDCP runtimes (modeled GPU vs extrapolated "
               "CPU) ===\n";
  std::cout << "sweep: " << sweep.Describe() << "\n\n";
  const auto rows =
      benchrun::RunSpeedupSweep(Problem::kUcddcp, sweep, std::cout);
  std::cout << "\n";
  benchrun::PrintRuntimeTable(rows);
  std::cout << "\nFig 16 (runtimes, log scale):\n";
  benchrun::PrintRuntimeChart(rows);
  std::cout << "\nPaper shape: SA_low needs ~0.67 s at n=50 (3.7x faster "
               "than the CPU); the UCDDCP evaluator costs more per "
               "generation than the CDD one (extra compression passes), so "
               "curves sit above Figure 14's.\n";
  return 0;
}

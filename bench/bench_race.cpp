/// \file bench_race.cpp
/// \brief Experiment: time-to-target of the racing portfolio vs its solo
/// contenders on the Biskup–Feldmann sweep.
///
/// For every sweep instance the bench first runs each contender to its
/// full generation budget to establish the best-known cost, sets the
/// target at a small tolerance above it, then measures — for every solo
/// engine and for `race` over the same pinned portfolio — the wall-clock
/// time until the best-so-far cost first reaches the target.  Engines are
/// driven through the resumable Step interface, so the best-so-far poll
/// costs nothing beyond the slice granularity.
///
///   bench_race [--sizes 20,40,60,100] [--indices 2] [--gens 1500]
///              [--seed 1] [--h 0.6] [--portfolio sa,ta,dpso]
///              [--race-slice 16] [--slice 16] [--tol-pct 2]
///              [--json BENCH_race.json] [--save PATH] [--smoke]
///
/// The interesting comparison is race vs the *median* solo engine: a
/// portfolio cannot beat an oracle that always picks the winner, but it
/// must beat the engine you'd pick by luck.  The bench exits nonzero when
/// race loses to the median on more than half the instances.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "meta/engine.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "serve/engine_registry.hpp"

namespace {

using namespace cdd;

std::vector<std::string> SplitNames(const std::string& csv) {
  std::vector<std::string> names;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  return names;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Steps a fresh engine until its best-so-far reaches \p target or the
/// budget runs out; returns seconds to target, or +inf when unreached.
double TimeToTarget(const serve::EngineFactory& factory,
                    const Instance& instance,
                    const serve::EngineOptions& options, Cost target,
                    std::uint64_t slice) {
  const std::unique_ptr<meta::Engine> engine = factory(instance, options);
  const double t0 = Now();
  for (;;) {
    if (engine->BestCost() <= target) return Now() - t0;
    if (engine->Step(slice) != meta::StepStatus::kRunning) break;
  }
  return engine->BestCost() <= target
             ? Now() - t0
             : std::numeric_limits<double>::infinity();
}

std::string FmtMs(double seconds) {
  if (seconds == std::numeric_limits<double>::infinity()) return "-";
  return benchutil::FmtDouble(seconds * 1e3, 2);
}

std::string JsonMs(double seconds) {
  if (seconds == std::numeric_limits<double>::infinity()) return "null";
  std::ostringstream out;
  out << seconds * 1e3;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Time-to-target: race vs solo contenders on the "
                 "Biskup-Feldmann sweep.\n"
                 "Flags: --sizes list --indices K --gens G --seed S --h H "
                 "--portfolio A,B,C --race-slice N --slice N --tol-pct P "
                 "--json PATH --save PATH --smoke\n";
    return 0;
  }
  const bool smoke = args.GetBool("smoke");
  const std::vector<std::uint32_t> sizes = args.GetUintList(
      "sizes", smoke ? std::vector<std::uint32_t>{20, 40}
                     : std::vector<std::uint32_t>{20, 40, 60, 100});
  const auto indices = static_cast<std::uint32_t>(
      args.GetInt("indices", smoke ? 1 : 2));
  const auto gens = static_cast<std::uint64_t>(
      args.GetInt("gens", smoke ? 400 : 1500));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const double h = args.GetDouble("h", 0.6);
  const std::string portfolio =
      args.GetString("portfolio", "sa,ta,dpso");
  const auto race_slice =
      static_cast<std::uint64_t>(args.GetInt("race-slice", 16));
  const auto slice = static_cast<std::uint64_t>(args.GetInt("slice", 16));
  const auto tol_pct = args.GetInt("tol-pct", 2);
  const std::string json_path =
      args.GetString("json", smoke ? "" : "BENCH_race.json");
  const std::string save_path = args.GetString("save", "");

  const std::vector<std::string> solos = SplitNames(portfolio);
  if (solos.size() < 2) {
    std::cerr << "error: --portfolio needs at least two contenders\n";
    return 1;
  }
  const serve::EngineRegistry& registry = serve::EngineRegistry::Default();
  std::vector<const serve::EngineFactory*> solo_factories;
  for (const std::string& name : solos) {
    const serve::EngineFactory* factory = registry.FindFactory(name);
    if (factory == nullptr) {
      std::cerr << "error: unknown contender '" << name << "'\n";
      return 1;
    }
    solo_factories.push_back(factory);
  }
  const serve::EngineFactory* race_factory = registry.FindFactory("race");

  std::ostringstream report;
  report << "=== Time-to-target: race(" << portfolio
         << ") vs solo contenders (gens=" << gens << ", target=best-known"
         << "+" << tol_pct << "%" << (smoke ? ", smoke" : "") << ") ===\n";
  std::vector<std::string> header{"instance", "best", "target"};
  for (const std::string& name : solos) header.push_back(name + " [ms]");
  header.insert(header.end(),
                {"median [ms]", "race [ms]", "race<=median"});
  benchutil::TextTable table(header);

  std::ostringstream json_rows;
  std::size_t instances = 0;
  std::size_t race_wins = 0;
  const orlib::BiskupFeldmannGenerator gen(seed);
  for (const std::uint32_t n : sizes) {
    for (std::uint32_t index = 0; index < indices; ++index) {
      const Instance instance = gen.Cdd(n, index, h);

      serve::EngineOptions options;
      options.generations = gens;
      options.seed = seed;

      // Best-known within budget: the cheapest cost any contender finds
      // when allowed to run out its full generation budget.
      Cost best_known = std::numeric_limits<Cost>::max();
      for (const serve::EngineFactory* factory : solo_factories) {
        std::unique_ptr<meta::Engine> engine =
            (*factory)(instance, options);
        best_known = std::min(
            best_known, meta::RunToCompletion(*engine).result.best_cost);
      }
      const Cost target =
          best_known + (best_known * static_cast<Cost>(tol_pct)) / 100;

      std::vector<double> solo_seconds;
      for (const serve::EngineFactory* factory : solo_factories) {
        solo_seconds.push_back(
            TimeToTarget(*factory, instance, options, target, slice));
      }
      std::vector<double> sorted = solo_seconds;
      std::sort(sorted.begin(), sorted.end());
      const double median = sorted[sorted.size() / 2];

      serve::EngineOptions race_options = options;
      race_options.portfolio = portfolio;
      race_options.race_slice = race_slice;
      // The race's Step unit is one scheduling round; one round per poll.
      const double race_seconds = TimeToTarget(
          *race_factory, instance, race_options, target, 1);

      const bool win = race_seconds <= median;
      race_wins += win ? 1 : 0;
      ++instances;

      std::ostringstream label;
      label << "n" << n << "-k" << index;
      std::vector<std::string> row{label.str(), std::to_string(best_known),
                                   std::to_string(target)};
      for (const double s : solo_seconds) row.push_back(FmtMs(s));
      row.insert(row.end(),
                 {FmtMs(median), FmtMs(race_seconds), win ? "yes" : "NO"});
      table.AddRow(row);

      if (instances > 1) json_rows << ",\n";
      json_rows << "    {\"n\": " << n << ", \"index\": " << index
                << ", \"best_known\": " << best_known
                << ", \"target\": " << target << ", \"solo_ms\": {";
      for (std::size_t k = 0; k < solos.size(); ++k) {
        json_rows << (k > 0 ? ", " : "") << "\"" << solos[k]
                  << "\": " << JsonMs(solo_seconds[k]);
      }
      json_rows << "}, \"median_solo_ms\": " << JsonMs(median)
                << ", \"race_ms\": " << JsonMs(race_seconds)
                << ", \"race_beats_median\": " << (win ? "true" : "false")
                << "}";
    }
  }

  report << table.ToString() << "\nrace reached the target no later than "
         << "the median solo contender on " << race_wins << "/" << instances
         << " instances ('-' marks a contender that never reached it).\n";
  std::cout << report.str();

  if (!save_path.empty()) {
    std::ofstream out(save_path);
    if (!out) {
      std::cerr << "error: cannot write " << save_path << "\n";
      return 1;
    }
    out << report.str();
    std::cout << "wrote " << save_path << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"race\",\n  \"portfolio\": \"" << portfolio
         << "\",\n  \"gens\": " << gens << ",\n  \"race_slice\": "
         << race_slice << ",\n  \"tol_pct\": " << tol_pct
         << ",\n  \"instances\": " << instances << ",\n  \"race_wins\": "
         << race_wins << ",\n  \"results\": [\n" << json_rows.str()
         << "\n  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (race_wins * 2 < instances) {
    std::cerr << "FAIL: race lost to the median solo contender on more "
                 "than half the instances\n";
    return 1;
  }
  return 0;
}

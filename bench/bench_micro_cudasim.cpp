/// \file bench_micro_cudasim.cpp
/// \brief GPU-simulator microbenchmarks: host-side cost of kernel launch,
/// fiber barriers, and atomic reduction — the simulator's own overheads,
/// kept separate from the modeled device time.

#include <benchmark/benchmark.h>

#include "cudasim/atomics.hpp"
#include "cudasim/device.hpp"

namespace {

using cdd::sim::Device;
using cdd::sim::LaunchOptions;
using cdd::sim::ThreadCtx;

void BM_EmptyKernelLaunch(benchmark::State& state) {
  Device gpu;
  const auto blocks = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    gpu.Launch({blocks}, {64}, [](ThreadCtx&) {});
  }
  state.SetItemsProcessed(state.iterations() * blocks * 64);
}
BENCHMARK(BM_EmptyKernelLaunch)->Arg(1)->Arg(4)->Arg(16);

void BM_CooperativeBarrierKernel(benchmark::State& state) {
  Device gpu;
  const auto barriers = static_cast<int>(state.range(0));
  LaunchOptions opts;
  opts.cooperative = true;
  for (auto _ : state) {
    gpu.Launch({1}, {64}, opts, [barriers](ThreadCtx& t) {
      for (int i = 0; i < barriers; ++i) t.syncthreads();
    });
  }
  state.SetItemsProcessed(state.iterations() * 64 * barriers);
}
BENCHMARK(BM_CooperativeBarrierKernel)->Arg(1)->Arg(4)->Arg(16);

void BM_AtomicMinReduction(benchmark::State& state) {
  Device gpu;
  std::int64_t best = 1 << 30;
  std::int64_t* ptr = &best;
  for (auto _ : state) {
    gpu.Launch({4}, {192}, [ptr](ThreadCtx& t) {
      cdd::sim::AtomicMin(
          ptr, static_cast<std::int64_t>(t.global_thread() * 1337 % 4096));
    });
  }
  state.SetItemsProcessed(state.iterations() * 4 * 192);
}
BENCHMARK(BM_AtomicMinReduction);

void BM_NonCooperativeThreadLoop(benchmark::State& state) {
  // Baseline for the fiber overhead: same geometry without barriers.
  Device gpu;
  for (auto _ : state) {
    gpu.Launch({1}, {64}, [](ThreadCtx& t) { t.charge(1); });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NonCooperativeThreadLoop);

}  // namespace

BENCHMARK_MAIN();

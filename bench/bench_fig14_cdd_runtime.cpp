/// \file bench_fig14_cdd_runtime.cpp
/// \brief Experiment E4 — Figure 14: runtimes of the four parallel CDD
/// algorithms (modeled GT 560M seconds) and the serial CPU baseline,
/// as a function of the job count.

#include <iostream>

#include "benchutil/campaign.hpp"
#include "benchutil/cli.hpp"
#include "common/paper_data.hpp"
#include "common/report.hpp"
#include "common/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Regenerates Figure 14 (CDD runtime curves).\n"
                 "Flags: --paper --sizes a,b,c --ensemble N --block B "
                 "--gens-low G --gens-high G --seed S\n";
    return 0;
  }
  benchutil::Sweep sweep = benchutil::Sweep::FromArgs(args);
  if (!args.Has("sizes") && !args.GetBool("paper")) {
    sweep.sizes = {10, 20, 50, 100, 200, 500, 1000};
  }
  // Runtime/speed-up calibration is cheap (short real runs, analytic
  // extrapolation), so default to the paper's launch configuration.
  if (!args.Has("ensemble")) sweep.ensemble = 768;
  if (!args.Has("block")) sweep.block_size = 192;
  if (!args.Has("gens-low")) sweep.gens_low = 1000;
  if (!args.Has("gens-high")) sweep.gens_high = 5000;

  std::cout << "=== Fig 14: CDD runtimes (modeled GPU vs extrapolated CPU) "
               "===\n";
  std::cout << "sweep: " << sweep.Describe() << "\n\n";
  const auto rows =
      benchrun::RunSpeedupSweep(Problem::kCdd, sweep, std::cout);
  std::cout << "\n";
  benchrun::PrintRuntimeTable(rows);
  std::cout << "\nFig 14 (runtimes, log scale):\n";
  benchrun::PrintRuntimeChart(rows);
  std::cout << "\nPaper anchors (768 chains, GT 560M): SA_5000 at n=1000 "
            << "~ " << benchdata::kPaperSa5000RuntimeN1000
            << " s; CPU [7] ~ " << benchdata::kPaperCpu7RuntimeN1000
            << " s.  Shape: runtimes grow ~linearly in n; SA_high ~ 5x "
               "SA_low; DPSO slower than SA at equal generations.\n";
  return 0;
}

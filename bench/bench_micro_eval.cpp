/// \file bench_micro_eval.cpp
/// \brief Experiment E11 — Section IV's motivation: "LP solvers are quite
/// slow when run iteratively on some general heuristic algorithm".
/// google-benchmark comparison of per-sequence latency:
///   O(n) evaluators  <<  O(n^2) reference oracles  <<  two-phase simplex.

#include <benchmark/benchmark.h>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/reference_eval.hpp"
#include "lp/models.hpp"

namespace {

using cdd::testing::RandomCdd;
using cdd::testing::RandomSeq;
using cdd::testing::RandomUcddcp;

void BM_EvalCddLinear(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const cdd::Instance instance = RandomCdd(n, 0.6, n);
  const cdd::CddEvaluator eval(instance);
  const cdd::Sequence seq = RandomSeq(n, n * 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Evaluate(seq));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EvalCddLinear)->RangeMultiplier(4)->Range(8, 2048)->Complexity();

void BM_EvalUcddcpLinear(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const cdd::Instance instance = RandomUcddcp(n, 1.1, n);
  const cdd::UcddcpEvaluator eval(instance);
  const cdd::Sequence seq = RandomSeq(n, n * 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Evaluate(seq));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EvalUcddcpLinear)
    ->RangeMultiplier(4)
    ->Range(8, 2048)
    ->Complexity();

void BM_EvalCddReferenceOracle(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const cdd::Instance instance = RandomCdd(n, 0.6, n);
  const cdd::Sequence seq = RandomSeq(n, n * 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdd::ReferenceCddCost(instance, seq));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EvalCddReferenceOracle)
    ->RangeMultiplier(4)
    ->Range(8, 512)
    ->Complexity();

void BM_EvalCddSimplexLp(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const cdd::Instance instance = RandomCdd(n, 0.6, n);
  const cdd::Sequence seq = RandomSeq(n, n * 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdd::lp::SolveSequenceLp(instance, seq));
  }
}
BENCHMARK(BM_EvalCddSimplexLp)->Arg(8)->Arg(16)->Arg(32);

void BM_EvalUcddcpSimplexLp(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const cdd::Instance instance = RandomUcddcp(n, 1.1, n);
  const cdd::Sequence seq = RandomSeq(n, n * 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdd::lp::SolveSequenceLp(instance, seq));
  }
}
BENCHMARK(BM_EvalUcddcpSimplexLp)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();

/// \file bench_eval_batch.cpp
/// \brief Experiment E12 — the batched-evaluation refactor, measured.
///
/// Before the refactor every engine scored candidates one at a time through
/// a type-erased std::function objective; after it, a generation lands in a
/// CandidatePool and one EvalCddBatch call scores all rows.  This bench
/// pits the two hot paths against each other on identical pools and checks
/// that the costs are bit-identical — the refactor's core promise.
///
///   bench_eval_batch [--sizes 50,200,500] [--batch 768] [--seed 1]
///                    [--json BENCH_eval.json] [--smoke]
///
/// --smoke runs a fast verification-only pass (tiny rep counts, no JSON) —
/// the CI hook.  The full run writes BENCH_eval.json with evals/sec for
/// both paths per size; results/exp_eval_batch.txt captures the stdout
/// table.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <span>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/test_instances.hpp"
#include "core/candidate_pool.hpp"
#include "core/eval_cdd.hpp"
#include "core/sequence.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct SizeResult {
  std::uint32_t n = 0;
  double function_evals_per_sec = 0;
  double batch_evals_per_sec = 0;
  double speedup = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Batched vs per-candidate std::function evaluation.\n"
                 "Flags: --sizes list --batch B --seed S --json PATH "
                 "--smoke\n";
    return 0;
  }
  const bool smoke = args.GetBool("smoke");
  const std::vector<std::uint32_t> sizes =
      args.GetUintList("sizes", {50, 200, 500});
  const auto batch = static_cast<std::uint32_t>(args.GetInt("batch", 768));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const std::string json_path = args.GetString("json", "BENCH_eval.json");

  std::cout << "=== Batched SoA evaluation vs std::function dispatch "
            << "(B=" << batch << (smoke ? ", smoke" : "") << ") ===\n";
  benchutil::TextTable table({"n", "fn evals/s", "batch evals/s", "speedup",
                              "bit-identical"});
  std::vector<SizeResult> results;
  bool all_identical = true;

  for (const std::uint32_t n : sizes) {
    const Instance instance = testing::RandomCdd(n, 0.6, seed + n);
    const CddEvaluator eval(instance);
    CandidatePool pool(n, batch);
    for (std::uint32_t b = 0; b < batch; ++b) {
      pool.Append(testing::RandomSeq(n, seed * 10'000 + b));
    }

    // The pre-refactor hot path: one type-erased call per candidate.
    const std::function<Cost(std::span<const JobId>)> objective =
        [&eval](std::span<const JobId> seq) { return eval.Evaluate(seq); };
    std::vector<Cost> fn_costs(batch, 0);

    // Size the rep counts so each timed section does comparable work
    // regardless of n (~50M job-steps for the full run).
    const std::uint64_t reps =
        smoke ? 2
              : std::max<std::uint64_t>(
                    3, 50'000'000 /
                           (static_cast<std::uint64_t>(n) * batch));

    // Warm both paths once (also produces the comparison data).
    for (std::uint32_t b = 0; b < batch; ++b) {
      fn_costs[b] = objective(pool.row(b));
    }
    eval.EvaluateBatch(pool);

    const Clock::time_point t0 = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      for (std::uint32_t b = 0; b < batch; ++b) {
        fn_costs[b] = objective(pool.row(b));
      }
    }
    const Clock::time_point t1 = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      eval.EvaluateBatch(pool);
    }
    const Clock::time_point t2 = Clock::now();

    bool identical = true;
    for (std::uint32_t b = 0; b < batch; ++b) {
      identical = identical && pool.costs()[b] == fn_costs[b];
    }
    all_identical = all_identical && identical;

    const double evals = static_cast<double>(reps) * batch;
    SizeResult row;
    row.n = n;
    row.function_evals_per_sec = evals / Seconds(t0, t1);
    row.batch_evals_per_sec = evals / Seconds(t1, t2);
    row.speedup = row.batch_evals_per_sec / row.function_evals_per_sec;
    row.identical = identical;
    results.push_back(row);
    table.AddRow({std::to_string(n),
                  benchutil::FmtDouble(row.function_evals_per_sec, 0),
                  benchutil::FmtDouble(row.batch_evals_per_sec, 0),
                  benchutil::FmtDouble(row.speedup, 2),
                  identical ? "yes" : "NO"});
  }
  std::cout << table.ToString();

  if (!all_identical) {
    std::cerr << "FAIL: batched costs differ from per-candidate costs\n";
    return 1;
  }
  if (smoke) {
    std::cout << "\nsmoke: batched evaluation bit-identical to "
                 "std::function dispatch on all sizes\n";
    return 0;
  }

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  json << "{\n  \"bench\": \"eval_batch\",\n  \"batch\": " << batch
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json << "    {\"n\": " << r.n << ", \"function_evals_per_sec\": "
         << benchutil::FmtDouble(r.function_evals_per_sec, 0)
         << ", \"batch_evals_per_sec\": "
         << benchutil::FmtDouble(r.batch_evals_per_sec, 0)
         << ", \"speedup\": " << benchutil::FmtDouble(r.speedup, 3)
         << ", \"bit_identical\": " << (r.identical ? "true" : "false")
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

/// \file bench_eval_batch.cpp
/// \brief Experiment E12 — the batched-evaluation refactor, measured.
///
/// Before the refactor every engine scored candidates one at a time through
/// a type-erased std::function objective; after it, a generation lands in a
/// CandidatePool and one EvalCddBatch call scores all rows.  This bench
/// pits the two hot paths against each other on identical pools and checks
/// that the costs are bit-identical — the refactor's core promise.
///
/// On top of that it times the two builds of the batch walk itself: the
/// portable scalar loop (raw::EvalCddBatch) against the lane-per-candidate
/// SIMD transposition (raw::EvalCddBatchSimd, AVX2 / NEON — see
/// core/eval_simd.hpp), again pinning bit-identity.  The header line names
/// the backend the dispatching call sites resolved to on this host.
///
///   bench_eval_batch [--sizes 50,200,500] [--batch 768] [--seed 1]
///                    [--json BENCH_eval.json] [--smoke]
///
/// --smoke runs a fast verification-only pass (tiny rep counts, no JSON) —
/// the CI hook, run once per CDD_EVAL_BACKEND value.  The full run writes
/// BENCH_eval.json with evals/sec for all four paths per size;
/// results/exp_eval_simd.txt captures the stdout table.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <span>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/test_instances.hpp"
#include "core/candidate_pool.hpp"
#include "core/cpu_features.hpp"
#include "core/pool_allocator.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_raw.hpp"
#include "core/eval_simd.hpp"
#include "core/sequence.hpp"
#include "cudasim/exec/backend.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct SizeResult {
  std::uint32_t n = 0;
  std::int32_t pool_stride = 0;   ///< row stride in JobId elements
  std::size_t pool_row_bytes = 0; ///< stride * sizeof(JobId)
  double function_evals_per_sec = 0;
  double batch_evals_per_sec = 0;
  double speedup = 0;
  bool identical = false;
  double scalar_batch_evals_per_sec = 0;
  double simd_batch_evals_per_sec = 0;
  double simd_speedup = 0;
  bool simd_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Batched vs per-candidate std::function evaluation, plus\n"
                 "scalar-batch vs SIMD-batch (lane-per-candidate) builds.\n"
                 "Flags: --sizes list --batch B --seed S --json PATH "
                 "--smoke\n";
    return 0;
  }
  const bool smoke = args.GetBool("smoke");
  const std::vector<std::uint32_t> sizes =
      args.GetUintList("sizes", {50, 200, 500});
  const auto batch = static_cast<std::uint32_t>(args.GetInt("batch", 768));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const std::string json_path = args.GetString("json", "BENCH_eval.json");

  const std::string_view backend = core::ToString(core::ActiveEvalBackend());
  const std::string_view pool_backend =
      core::ToString(core::ActivePoolBackend());
  const char* isa = raw::SimdBatchIsa();
  const std::string_view exec_backend =
      sim::exec::ToString(sim::exec::ActiveExecBackend());
  const unsigned exec_workers = sim::exec::ActiveExecWorkers();
  std::cout << "=== Batched SoA evaluation vs std::function dispatch "
            << "(B=" << batch << (smoke ? ", smoke" : "") << ") ===\n"
            << "dispatch backend: " << backend << " (simd isa: " << isa
            << ", available: " << (raw::SimdBatchAvailable() ? "yes" : "no")
            << "), pool backend: " << pool_backend << ", exec backend: "
            << exec_backend << " (" << exec_workers << " workers)\n";
  benchutil::TextTable table({"n", "fn evals/s", "batch evals/s", "speedup",
                              "scalar evals/s", "simd evals/s",
                              "simd speedup", "bit-identical"});
  std::vector<SizeResult> results;
  bool all_identical = true;

  for (const std::uint32_t n : sizes) {
    const Instance instance = testing::RandomCdd(n, 0.6, seed + n);
    const CddEvaluator eval(instance);
    CandidatePool pool(n, batch);
    for (std::uint32_t b = 0; b < batch; ++b) {
      pool.Append(testing::RandomSeq(n, seed * 10'000 + b));
    }
    const CandidatePoolView view = pool.view();
    const auto nn = static_cast<std::int32_t>(n);
    const auto bb = static_cast<std::int32_t>(batch);

    // The pre-refactor hot path: one type-erased call per candidate.
    const std::function<Cost(std::span<const JobId>)> objective =
        [&eval](std::span<const JobId> seq) { return eval.Evaluate(seq); };
    std::vector<Cost> fn_costs(batch, 0);
    std::vector<Cost> scalar_costs(batch, 0);
    std::vector<Cost> simd_costs(batch, 0);

    // Size the rep counts so each timed section does comparable work
    // regardless of n (~50M job-steps for the full run).
    const std::uint64_t reps =
        smoke ? 2
              : std::max<std::uint64_t>(
                    3, 50'000'000 /
                           (static_cast<std::uint64_t>(n) * batch));

    // Warm all paths once (also produces the comparison data).
    for (std::uint32_t b = 0; b < batch; ++b) {
      fn_costs[b] = objective(pool.row(b));
    }
    eval.EvaluateBatch(pool);
    raw::EvalCddBatch(nn, eval.due_date(), view.seqs, view.stride, bb,
                      eval.proc_data(), eval.alpha_data(), eval.beta_data(),
                      scalar_costs.data());
    raw::EvalCddBatchSimd(nn, eval.due_date(), view.seqs, view.stride, bb,
                          eval.proc_data(), eval.alpha_data(),
                          eval.beta_data(), simd_costs.data());

    const Clock::time_point t0 = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      for (std::uint32_t b = 0; b < batch; ++b) {
        fn_costs[b] = objective(pool.row(b));
      }
    }
    const Clock::time_point t1 = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      eval.EvaluateBatch(pool);
    }
    const Clock::time_point t2 = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      raw::EvalCddBatch(nn, eval.due_date(), view.seqs, view.stride, bb,
                        eval.proc_data(), eval.alpha_data(),
                        eval.beta_data(), scalar_costs.data());
    }
    const Clock::time_point t3 = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      raw::EvalCddBatchSimd(nn, eval.due_date(), view.seqs, view.stride, bb,
                            eval.proc_data(), eval.alpha_data(),
                            eval.beta_data(), simd_costs.data());
    }
    const Clock::time_point t4 = Clock::now();

    bool identical = true;
    bool simd_identical = true;
    for (std::uint32_t b = 0; b < batch; ++b) {
      identical = identical && pool.costs()[b] == fn_costs[b];
      simd_identical = simd_identical && simd_costs[b] == scalar_costs[b] &&
                       simd_costs[b] == fn_costs[b];
    }
    all_identical = all_identical && identical && simd_identical;

    const double evals = static_cast<double>(reps) * batch;
    SizeResult row;
    row.n = n;
    row.pool_stride = view.stride;
    row.pool_row_bytes =
        static_cast<std::size_t>(view.stride) * sizeof(JobId);
    row.function_evals_per_sec = evals / Seconds(t0, t1);
    row.batch_evals_per_sec = evals / Seconds(t1, t2);
    row.speedup = row.batch_evals_per_sec / row.function_evals_per_sec;
    row.identical = identical;
    row.scalar_batch_evals_per_sec = evals / Seconds(t2, t3);
    row.simd_batch_evals_per_sec = evals / Seconds(t3, t4);
    row.simd_speedup =
        row.simd_batch_evals_per_sec / row.scalar_batch_evals_per_sec;
    row.simd_identical = simd_identical;
    results.push_back(row);
    table.AddRow({std::to_string(n),
                  benchutil::FmtDouble(row.function_evals_per_sec, 0),
                  benchutil::FmtDouble(row.batch_evals_per_sec, 0),
                  benchutil::FmtDouble(row.speedup, 2),
                  benchutil::FmtDouble(row.scalar_batch_evals_per_sec, 0),
                  benchutil::FmtDouble(row.simd_batch_evals_per_sec, 0),
                  benchutil::FmtDouble(row.simd_speedup, 2),
                  identical && simd_identical ? "yes" : "NO"});
  }
  std::cout << table.ToString();

  if (!all_identical) {
    std::cerr << "FAIL: evaluation paths disagree (function vs batch vs "
                 "scalar vs simd)\n";
    return 1;
  }
  if (smoke) {
    std::cout << "\nsmoke: function, batch, scalar-batch and simd-batch "
                 "evaluation all bit-identical on all sizes\n";
    return 0;
  }

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  json << "{\n  \"bench\": \"eval_batch\",\n  \"batch\": " << batch
       << ",\n  \"backend\": \"" << backend << "\",\n  \"simd_isa\": \""
       << isa << "\",\n  \"pool_backend\": \"" << pool_backend
       << "\",\n  \"exec_backend\": \"" << exec_backend
       << "\",\n  \"exec_workers\": " << exec_workers
       << ",\n  \"pool_alignment_bytes\": 64,\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json << "    {\"n\": " << r.n << ", \"pool_stride\": " << r.pool_stride
         << ", \"pool_row_bytes\": " << r.pool_row_bytes
         << ", \"function_evals_per_sec\": "
         << benchutil::FmtDouble(r.function_evals_per_sec, 0)
         << ", \"batch_evals_per_sec\": "
         << benchutil::FmtDouble(r.batch_evals_per_sec, 0)
         << ", \"speedup\": " << benchutil::FmtDouble(r.speedup, 3)
         << ", \"bit_identical\": " << (r.identical ? "true" : "false")
         << ", \"scalar_batch_evals_per_sec\": "
         << benchutil::FmtDouble(r.scalar_batch_evals_per_sec, 0)
         << ", \"simd_batch_evals_per_sec\": "
         << benchutil::FmtDouble(r.simd_batch_evals_per_sec, 0)
         << ", \"simd_speedup\": "
         << benchutil::FmtDouble(r.simd_speedup, 3)
         << ", \"simd_bit_identical\": "
         << (r.simd_identical ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

/// \file bench_exec_scaling.cpp
/// \brief Experiment: wall-clock scaling of the host-parallel execution
/// backend, with determinism pinned.
///
/// The virtual-clock separation promises that block execution placement
/// changes *only* wall-clock time: the modeled GT 560M seconds, the best
/// cost and the evaluation count must be bit-identical at every worker
/// count.  This bench runs the paper's workhorse launch shape (a
/// 768-chain parallel SA ensemble) under worker counts 1..hardware
/// concurrency, measures real time per run, and exits nonzero if any
/// worker count changes the answer or the modeled time.
///
///   bench_exec_scaling [--n 200] [--ensemble 768] [--block 192]
///                      [--gens 200] [--seed 1] [--max-workers W]
///                      [--save results/exp_exec_scaling.txt]
///
/// Speedup is relative to the 1-worker (serial-equivalent) run.  On hosts
/// with fewer cores than workers the extra workers just contend — the
/// point of the sweep is to record how far the backend scales on the
/// machine at hand, honestly.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "common/test_instances.hpp"
#include "cudasim/device.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << "Host-parallel execution backend scaling sweep.\n"
                 "Flags: --n N --ensemble E --block B --gens G --seed S "
                 "--max-workers W --save PATH\n";
    return 0;
  }
  const auto n = static_cast<std::uint32_t>(args.GetInt("n", 200));
  const auto ensemble =
      static_cast<std::uint32_t>(args.GetInt("ensemble", 768));
  const auto block = static_cast<std::uint32_t>(args.GetInt("block", 192));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 200));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto max_workers = static_cast<unsigned>(
      args.GetInt("max-workers", static_cast<int>(hw)));
  const std::string save_path = args.GetString("save", "");

  const Instance instance = testing::RandomCdd(n, 0.6, seed);

  // Worker counts 1, 2, 4, ... up to the cap, always including the cap —
  // a dense-enough sweep without quadratic bench time on wide machines.
  std::vector<unsigned> workers{1};
  for (unsigned w = 2; w < max_workers; w *= 2) workers.push_back(w);
  if (max_workers > 1) workers.push_back(max_workers);

  std::ostringstream report;
  report << "=== Host-parallel execution scaling (n=" << n << ", "
         << ensemble << " chains x " << gens << " generations, "
         << "hardware threads: " << hw << ") ===\n";
  benchutil::TextTable table({"workers", "wall [s]", "speedup", "best",
                              "modeled [s]", "evals", "identical"});

  Cost best0 = 0;
  double modeled0 = 0;
  std::uint64_t evals0 = 0;
  double wall0 = 0;
  bool all_identical = true;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    sim::Device gpu;
    gpu.set_worker_threads(workers[i]);
    par::ParallelSaParams params;
    params.config = par::LaunchConfig::ForEnsemble(ensemble, block);
    params.generations = gens;
    params.seed = seed;
    const par::GpuRunResult run = par::RunParallelSa(gpu, instance, params);
    bool identical = true;
    if (i == 0) {
      best0 = run.best_cost;
      modeled0 = run.device_seconds;
      evals0 = run.evaluations;
      wall0 = run.wall_seconds;
    } else {
      identical = run.best_cost == best0 &&
                  run.device_seconds == modeled0 &&
                  run.evaluations == evals0;
    }
    all_identical = all_identical && identical;
    table.AddRow({std::to_string(workers[i]),
                  benchutil::FmtDouble(run.wall_seconds, 3),
                  benchutil::FmtDouble(wall0 / run.wall_seconds, 2),
                  std::to_string(run.best_cost),
                  benchutil::FmtDouble(run.device_seconds, 6),
                  std::to_string(run.evaluations),
                  identical ? "yes" : "NO"});
  }
  report << table.ToString()
         << "\nNote: 'modeled [s]' is GT 560M device time from the "
            "calibrated model and must not move with the worker count — "
            "the backend schedules blocks, the virtual clock stays "
            "serial.  'speedup' is wall-clock relative to 1 worker on "
            "this machine's "
         << hw << " hardware thread(s).\n";

  std::cout << report.str();
  if (!save_path.empty()) {
    std::ofstream out(save_path);
    if (!out) {
      std::cerr << "error: cannot write " << save_path << "\n";
      return 1;
    }
    out << report.str();
    std::cout << "wrote " << save_path << "\n";
  }
  if (!all_identical) {
    std::cerr << "FAIL: worker count changed the best cost, the modeled "
                 "time or the evaluation count\n";
    return 1;
  }
  return 0;
}

#pragma once
/// \file paper_data.hpp
/// \brief The paper's published numbers (Tables II-V), embedded so every
/// bench can print paper-vs-measured side by side.

#include <array>
#include <cstdint>

namespace cdd::benchdata {

/// One row of a 4-algorithm quality/speedup table.
struct AlgoRow {
  std::uint32_t jobs;
  double sa_low;     ///< SA_1000
  double sa_high;    ///< SA_5000
  double dpso_low;   ///< DPSO_1000
  double dpso_high;  ///< DPSO_5000
};

/// Table II: average %Delta for the CDD, relative to Lässig et al. [7].
inline constexpr std::array<AlgoRow, 7> kPaperTable2 = {{
    {10, 0.159, 0.0, 0.0, 0.0},
    {20, 0.793, 0.392, 0.141, 0.033},
    {50, 0.442, 0.243, 0.652, 0.146},
    {100, 0.386, 0.307, 2.048, 0.463},
    {200, 0.437, 0.388, 4.854, 1.148},
    {500, 0.734, 0.354, 15.562, 3.807},
    {1000, 1.904, 0.401, 32.376, 9.342},
}};

/// Table III: speed-ups for the CDD relative to [7] (first) and [18]
/// (second).
struct SpeedupRow {
  std::uint32_t jobs;
  double sa_low_7, sa_low_18;
  double sa_high_7, sa_high_18;
  double dpso_low_7, dpso_low_18;
  double dpso_high_7, dpso_high_18;
};

inline constexpr std::array<SpeedupRow, 7> kPaperTable3 = {{
    {10, 1.9, 4.7, 0.5, 1.3, 1.2, 2.9, 0.5, 1.2},
    {20, 3.8, 227.6, 1.1, 65.4, 1.9, 113.8, 0.6, 36.7},
    {50, 11.8, 264.5, 2.9, 65.1, 4.8, 107.7, 1.2, 28.0},
    {100, 40.6, 619.3, 9.2, 141.7, 12.7, 195.1, 3.0, 46.6},
    {200, 47.7, 1137.1, 10.4, 248.7, 14.2, 338.7, 3.1, 75.6},
    {500, 94.7, 1971.4, 19.7, 410.2, 23.6, 492.2, 5.4, 113.5},
    {1000, 111.2, 3214.8, 21.9, 635.1, 24.6, 711.8, 5.6, 164.2},
}};

/// Table IV: average %Delta for the UCDDCP, relative to Awasthi et al. [8].
inline constexpr std::array<AlgoRow, 7> kPaperTable4 = {{
    {10, 0.0, 0.0, 0.0, 0.0},
    {20, 1.233, 0.151, -0.094, -0.083},
    {50, 0.105, -0.142, 0.005, -0.382},
    {100, 0.131, -0.191, 1.705, 0.048},
    {200, 0.356, -0.136, 5.472, 1.153},
    {500, 1.465, -0.777, 17.514, 3.544},
    {1000, 6.801, 0.265, 36.015, 10.928},
}};

/// Table V: speed-ups for the UCDDCP relative to [8].
inline constexpr std::array<AlgoRow, 7> kPaperTable5 = {{
    {10, 0.459, 0.119, 0.436, 0.189},
    {20, 1.225, 0.289, 1.043, 0.327},
    {50, 3.701, 0.841, 2.480, 0.642},
    {100, 9.226, 2.012, 5.229, 1.247},
    {200, 23.600, 5.039, 11.866, 2.662},
    {500, 43.060, 8.981, 18.494, 4.138},
    {1000, 47.383, 9.721, 18.38, 4.167},
}};

/// Section VIII runtime anchors (Figure 14 discussion): SA_5000 at n=1000
/// runs ~17.26 s on the GT 560M; the CPU implementation of [7] takes
/// ~379.36 s.
inline constexpr double kPaperSa5000RuntimeN1000 = 17.26;
inline constexpr double kPaperCpu7RuntimeN1000 = 379.36;

/// Finds a paper row by job count; returns nullptr when the sweep uses a
/// size the paper did not.
template <std::size_t N>
inline const AlgoRow* FindRow(const std::array<AlgoRow, N>& table,
                              std::uint32_t jobs) {
  for (const AlgoRow& row : table) {
    if (row.jobs == jobs) return &row;
  }
  return nullptr;
}

inline const SpeedupRow* FindSpeedupRow(std::uint32_t jobs) {
  for (const SpeedupRow& row : kPaperTable3) {
    if (row.jobs == jobs) return &row;
  }
  return nullptr;
}

}  // namespace cdd::benchdata

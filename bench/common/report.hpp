#pragma once
/// \file report.hpp
/// \brief Table rendering shared by the paper-reproduction bench mains.

#include <iostream>
#include <optional>

#include "benchutil/asciichart.hpp"
#include "benchutil/csv.hpp"
#include "benchutil/table.hpp"
#include "common/paper_data.hpp"
#include "common/sweeps.hpp"

namespace cdd::benchrun {

/// Category labels ("n=10", ...) of a quality/speed-up sweep.
template <typename Row>
inline std::vector<std::string> JobLabels(const std::vector<Row>& rows) {
  std::vector<std::string> labels;
  labels.reserve(rows.size());
  for (const Row& row : rows) labels.push_back(std::to_string(row.jobs));
  return labels;
}

/// Renders the bar chart behind Figures 12 / 15 (mean %Delta per size and
/// algorithm).
inline void PrintDeviationChart(const std::vector<QualityRow>& rows) {
  std::vector<benchutil::Series> series(4);
  for (int a = 0; a < 4; ++a) {
    series[a].name = kAlgoNames[a];
    for (const QualityRow& row : rows) {
      series[a].values.push_back(row.cell[a].deviation.mean());
    }
  }
  std::cout << benchutil::BarChart(JobLabels(rows), series);
}

/// Renders the line chart behind Figures 14 / 16 (runtimes, log scale).
inline void PrintRuntimeChart(const std::vector<SpeedupRowOut>& rows) {
  std::vector<benchutil::Series> series(5);
  const char* names[] = {"SA_low", "SA_high", "DPSO_low", "DPSO_high",
                         "CPU[7]"};
  for (int a = 0; a < 5; ++a) series[a].name = names[a];
  for (const SpeedupRowOut& row : rows) {
    for (int a = 0; a < 4; ++a) {
      series[a].values.push_back(row.gpu_seconds[a]);
    }
    series[4].values.push_back(row.cpu7_seconds);
  }
  std::cout << benchutil::LineChart(JobLabels(rows), series);
}

/// Renders the bar chart behind Figures 13 / 17 (speed-ups vs the serial
/// baseline per size and algorithm).
inline void PrintSpeedupChart(const std::vector<SpeedupRowOut>& rows) {
  std::vector<benchutil::Series> series(4);
  for (int a = 0; a < 4; ++a) series[a].name = kAlgoNames[a];
  for (const SpeedupRowOut& row : rows) {
    for (int a = 0; a < 4; ++a) {
      series[a].values.push_back(row.cpu7_seconds / row.gpu_seconds[a]);
    }
  }
  std::cout << benchutil::BarChart(JobLabels(rows), series);
}

/// Prints a Table II/IV-style quality table: measured %Delta per algorithm
/// with the paper's value in parentheses where the size matches.
template <std::size_t N>
inline void PrintQualityTable(
    const std::vector<QualityRow>& rows,
    const std::array<benchdata::AlgoRow, N>& paper) {
  benchutil::TextTable table({"Jobs", "SA_low %D (paper)",
                              "SA_high %D (paper)", "DPSO_low %D (paper)",
                              "DPSO_high %D (paper)", "improved"});
  for (const QualityRow& row : rows) {
    const benchdata::AlgoRow* ref = benchdata::FindRow(paper, row.jobs);
    const auto cell = [&](int algo, double paper_value) {
      std::string out =
          benchutil::FmtDouble(row.cell[algo].deviation.mean(), 3);
      if (ref != nullptr) {
        out += " (" + benchutil::FmtDouble(paper_value, 3) + ")";
      }
      return out;
    };
    table.AddRow({std::to_string(row.jobs),
                  cell(0, ref ? ref->sa_low : 0),
                  cell(1, ref ? ref->sa_high : 0),
                  cell(2, ref ? ref->dpso_low : 0),
                  cell(3, ref ? ref->dpso_high : 0),
                  std::to_string(row.improved_best_known)});
  }
  std::cout << table.ToString();
}

/// Prints the runtime series behind Figures 14/16 (modeled GPU seconds per
/// algorithm + extrapolated serial CPU seconds).
inline void PrintRuntimeTable(const std::vector<SpeedupRowOut>& rows) {
  benchutil::TextTable table({"Jobs", "SA_low [s]", "SA_high [s]",
                              "DPSO_low [s]", "DPSO_high [s]",
                              "CPU[7] [s]"});
  for (const SpeedupRowOut& row : rows) {
    table.AddRow({std::to_string(row.jobs),
                  benchutil::FmtDouble(row.gpu_seconds[0], 4),
                  benchutil::FmtDouble(row.gpu_seconds[1], 4),
                  benchutil::FmtDouble(row.gpu_seconds[2], 4),
                  benchutil::FmtDouble(row.gpu_seconds[3], 4),
                  benchutil::FmtDouble(row.cpu7_seconds, 3)});
  }
  std::cout << table.ToString();
}


/// Dumps a quality sweep to CSV (one row per size x algorithm).
inline void WriteQualityCsv(const std::string& path,
                            const std::vector<QualityRow>& rows) {
  benchutil::CsvWriter csv(path, {"jobs", "algorithm", "mean_deviation_pct",
                                  "mean_device_seconds", "instances",
                                  "improved_best_known"});
  for (const QualityRow& row : rows) {
    for (int a = 0; a < 4; ++a) {
      csv.AddRow({std::to_string(row.jobs), kAlgoNames[a],
                  benchutil::FmtDouble(row.cell[a].deviation.mean(), 6),
                  benchutil::FmtDouble(row.cell[a].device_seconds.mean(), 9),
                  std::to_string(row.instances),
                  std::to_string(row.improved_best_known)});
    }
  }
}

/// Dumps a speed-up sweep to CSV.
inline void WriteSpeedupCsv(const std::string& path,
                            const std::vector<SpeedupRowOut>& rows) {
  benchutil::CsvWriter csv(
      path, {"jobs", "algorithm", "gpu_seconds", "cpu7_seconds",
             "cpu18_seconds", "speedup_vs_7"});
  for (const SpeedupRowOut& row : rows) {
    for (int a = 0; a < 4; ++a) {
      csv.AddRow({std::to_string(row.jobs), kAlgoNames[a],
                  benchutil::FmtDouble(row.gpu_seconds[a], 9),
                  benchutil::FmtDouble(row.cpu7_seconds, 6),
                  benchutil::FmtDouble(row.cpu18_seconds, 6),
                  benchutil::FmtDouble(
                      row.cpu7_seconds / row.gpu_seconds[a], 4)});
    }
  }
}

}  // namespace cdd::benchrun

#include "common/sweeps.hpp"

#include <algorithm>
#include <ostream>

#include "cudasim/device.hpp"
#include "meta/evostrategy.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "parallel/parallel_dpso.hpp"
#include "parallel/parallel_sa.hpp"

namespace cdd::benchrun {
namespace {

par::ParallelSaParams SaParamsFor(const benchutil::Sweep& sweep,
                                  std::uint64_t generations,
                                  std::uint64_t seed) {
  par::ParallelSaParams p;
  p.config = par::LaunchConfig::ForEnsemble(sweep.ensemble,
                                            sweep.block_size);
  p.generations = generations;
  p.temp_samples = 1000;
  p.seed = seed;
  // The quality sweeps seed the ensembles with the V-shape constructive
  // heuristic: the paper leaves the initial configurations open
  // (Section V-A) and this choice brings the short-budget deviations into
  // the regime its tables report (EXPERIMENTS.md "Initialization").
  p.vshape_init = true;
  return p;
}

par::ParallelDpsoParams DpsoParamsFor(const benchutil::Sweep& sweep,
                                      std::uint64_t generations,
                                      std::uint64_t seed) {
  par::ParallelDpsoParams p;
  p.config = par::LaunchConfig::ForEnsemble(sweep.ensemble,
                                            sweep.block_size);
  p.generations = generations;
  p.seed = seed;
  p.vshape_init = true;  // same initialization policy as the SA sweep
  return p;
}

}  // namespace

std::uint32_t InstancesPerSize(Problem problem,
                               const benchutil::Sweep& sweep) {
  // Both problems sweep instances x h-grid many instances per size (the
  // paper's 10 x 4 = 40); UCDDCP instances just use a flat index.
  (void)problem;
  const auto h_count =
      static_cast<std::uint32_t>(std::max<std::size_t>(sweep.h.size(), 1));
  return sweep.instances * h_count;
}

Instance MakeSweepInstance(Problem problem, const benchutil::Sweep& sweep,
                           std::uint32_t n, std::uint32_t index) {
  const orlib::BiskupFeldmannGenerator gen(sweep.seed);
  if (problem == Problem::kCdd) {
    const auto h_count = static_cast<std::uint32_t>(sweep.h.size());
    const std::uint32_t k = index / h_count;
    const double h = sweep.h[index % h_count];
    return gen.Cdd(n, k, h);
  }
  return gen.Ucddcp(n, index);
}

std::vector<QualityRow> RunQualitySweep(Problem problem,
                                        const benchutil::Sweep& sweep,
                                        std::ostream& log) {
  std::vector<QualityRow> rows;
  for (const std::uint32_t n : sweep.sizes) {
    QualityRow row;
    row.jobs = n;
    const std::uint32_t count = InstancesPerSize(problem, sweep);
    for (std::uint32_t index = 0; index < count; ++index) {
      const Instance instance =
          MakeSweepInstance(problem, sweep, n, index);
      const std::uint64_t salt =
          static_cast<std::uint64_t>(n) * 1000 + index;
      const Cost reference =
          benchutil::ComputeReferenceCost(instance, sweep, salt);

      const auto record = [&](Algo algo, const par::GpuRunResult& result) {
        QualityCell& cell = row.cell[static_cast<int>(algo)];
        const double dev =
            reference == 0
                ? (result.best_cost == 0 ? 0.0 : 100.0)
                : static_cast<double>(result.best_cost - reference) /
                      static_cast<double>(reference) * 100.0;
        cell.deviation.Add(dev);
        cell.device_seconds.Add(result.device_seconds);
        cell.wall_seconds.Add(result.wall_seconds);
        if (result.best_cost < reference) ++row.improved_best_known;
      };

      {
        sim::Device gpu;
        record(Algo::kSaLow,
               par::RunParallelSa(
                   gpu, instance,
                   SaParamsFor(sweep, sweep.gens_low, sweep.seed + salt)));
      }
      {
        sim::Device gpu;
        record(Algo::kSaHigh,
               par::RunParallelSa(
                   gpu, instance,
                   SaParamsFor(sweep, sweep.gens_high, sweep.seed + salt)));
      }
      {
        sim::Device gpu;
        record(Algo::kDpsoLow,
               par::RunParallelDpso(gpu, instance,
                                    DpsoParamsFor(sweep, sweep.gens_low,
                                                  sweep.seed + salt)));
      }
      {
        sim::Device gpu;
        record(Algo::kDpsoHigh,
               par::RunParallelDpso(gpu, instance,
                                    DpsoParamsFor(sweep, sweep.gens_high,
                                                  sweep.seed + salt)));
      }
      ++row.instances;
    }
    log << "  n=" << n << ": " << row.instances
        << " instances done (mean %D SA_high="
        << row.cell[1].deviation.mean() << ")\n";
    rows.push_back(row);
  }
  return rows;
}

namespace {

/// Modeled device seconds of a full run, extrapolated from two short real
/// runs of the pipeline (device time is affine in the generation count).
struct GpuCalibration {
  double setup = 0.0;
  double per_generation = 0.0;
  double At(std::uint64_t gens) const {
    return setup + per_generation * static_cast<double>(gens);
  }
};

GpuCalibration CalibrateGpu(const Instance& instance,
                            const benchutil::Sweep& sweep, bool dpso) {
  const auto device_time = [&](std::uint64_t gens) {
    sim::Device gpu;
    if (dpso) {
      return par::RunParallelDpso(gpu, instance,
                                  DpsoParamsFor(sweep, gens, sweep.seed))
          .device_seconds;
    }
    par::ParallelSaParams p = SaParamsFor(sweep, gens, sweep.seed);
    p.temp_samples = 200;  // calibration: keep host setup cheap
    return par::RunParallelSa(gpu, instance, p).device_seconds;
  };
  constexpr std::uint64_t kShort = 4;
  constexpr std::uint64_t kLong = 12;
  const double t_short = device_time(kShort);
  const double t_long = device_time(kLong);
  GpuCalibration cal;
  cal.per_generation =
      (t_long - t_short) / static_cast<double>(kLong - kShort);
  cal.setup = t_short - cal.per_generation * kShort;
  return cal;
}

}  // namespace

std::vector<SpeedupRowOut> RunSpeedupSweep(Problem problem,
                                           const benchutil::Sweep& sweep,
                                           std::ostream& log) {
  // The authors' CPU baselines are fixed published serial runs whose effort
  // grows with the instance (iterations roughly proportional to n, the
  // usual serial design), i.e. time(n) ~ A * n * per_eval(n).  A single
  // anchor fixes A:
  //  * CDD: the published [7] runtime of 379.36 s at n = 1000;
  //  * UCDDCP: the published Table V speed-up of 47.383 at n = 1000 times
  //    our modeled GPU SA_low time (no absolute [8] runtime is published).
  // The [18] baseline is taken as the published Table III ratio at
  // n = 1000 (3214.8 / 111.2 = 28.9x slower than [7]).
  // Full derivation: EXPERIMENTS.md "Calibration".
  constexpr double kPaperRatio18To7 = 3214.8 / 111.2;

  const Instance anchor_instance =
      MakeSweepInstance(problem, sweep, 1000, 0);
  const double anchor_per_eval = benchutil::MeasureSecondsPerEval(
      meta::Objective::ForInstance(anchor_instance), /*calib_evals=*/2000,
      sweep.seed);
  double cpu_anchor_1000 = 379.36;  // [7]'s published runtime (CDD)
  if (problem == Problem::kUcddcp) {
    const GpuCalibration cal =
        CalibrateGpu(anchor_instance, sweep, /*dpso=*/false);
    cpu_anchor_1000 = 47.383 * cal.At(sweep.gens_low);
  }
  const double effort_constant = cpu_anchor_1000 / (1000.0 *
                                                    anchor_per_eval);
  log << "  baseline effort law: time(n) = " << effort_constant
      << " * n * per_eval(n)  (anchored at n=1000: " << cpu_anchor_1000
      << " s)\n";

  std::vector<SpeedupRowOut> rows;
  for (const std::uint32_t n : sweep.sizes) {
    SpeedupRowOut row;
    row.jobs = n;
    // One representative instance per size (index 0), as runtimes depend
    // on n, not on the penalty draw.
    const Instance instance = MakeSweepInstance(problem, sweep, n, 0);
    const meta::Objective objective =
        meta::Objective::ForInstance(instance);

    // --- CPU side: measured seconds per evaluation, effort law ----------
    const double sec_per_eval = benchutil::MeasureSecondsPerEval(
        objective,
        /*calib_evals=*/std::max<std::uint64_t>(200000 / n, 2000),
        sweep.seed + n);
    row.cpu7_seconds = effort_constant * static_cast<double>(n) *
                       sec_per_eval;
    row.cpu18_seconds = row.cpu7_seconds * kPaperRatio18To7;

    // --- GPU side: short real runs, per-generation device time ----------
    for (const bool dpso : {false, true}) {
      const GpuCalibration cal = CalibrateGpu(instance, sweep, dpso);
      const int low_idx = dpso ? 2 : 0;
      row.gpu_seconds[low_idx] = cal.At(sweep.gens_low);
      row.gpu_seconds[low_idx + 1] = cal.At(sweep.gens_high);
    }

    log << "  n=" << n << ": cpu " << sec_per_eval * 1e6
        << " us/eval, gpu SA_low " << row.gpu_seconds[0] << " s\n";
    rows.push_back(row);
  }
  return rows;
}

}  // namespace cdd::benchrun

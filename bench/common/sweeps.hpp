#pragma once
/// \file sweeps.hpp
/// \brief Shared drivers for the paper-table benches.
///
/// Table II / IV (quality) and Table III / V (speed-up) share all of their
/// mechanics between CDD and UCDDCP; the per-table mains only choose the
/// problem, the paper's reference numbers and the output framing.

#include <iosfwd>
#include <vector>

#include "benchutil/campaign.hpp"
#include "benchutil/stats.hpp"
#include "core/instance.hpp"

namespace cdd::benchrun {

/// The four algorithm variants of Section VIII.
enum class Algo { kSaLow, kSaHigh, kDpsoLow, kDpsoHigh };
inline constexpr const char* kAlgoNames[] = {"SA_low", "SA_high",
                                             "DPSO_low", "DPSO_high"};

/// Aggregates of one (size x algorithm) cell.
struct QualityCell {
  benchutil::RunningStats deviation;  ///< %Delta vs the serial reference
  benchutil::RunningStats device_seconds;
  benchutil::RunningStats wall_seconds;
};

/// Outcome of a quality sweep for one job count.
struct QualityRow {
  std::uint32_t jobs = 0;
  QualityCell cell[4];
  std::uint64_t instances = 0;
  std::uint64_t improved_best_known = 0;  ///< parallel beat the reference
};

/// Runs the Table II (CDD) or Table IV (UCDDCP) sweep: for every benchmark
/// instance compute the serial-CPU reference, run the four parallel
/// algorithms, and accumulate %Delta.  Progress notes go to \p log.
std::vector<QualityRow> RunQualitySweep(Problem problem,
                                        const benchutil::Sweep& sweep,
                                        std::ostream& log);

/// Measured/extrapolated runtimes of one job count (Tables III/V and
/// Figures 13, 14, 16, 17).
///
/// CPU baselines follow the paper's comparison structure: [7]/[8]/[18] are
/// *fixed* serial runs per instance size (their published runtimes do not
/// depend on which parallel variant they are compared against), emulated
/// as measured per-evaluation cost x the paper's best-known-producing
/// budget (768 x 5000 evaluations) x an era factor that maps this host's
/// per-evaluation speed to the authors' 2.4 GHz Xeon.  The era factor is
/// calibrated once from the paper's single CPU anchor (379.36 s at
/// n = 1000) and reported in the bench output; see EXPERIMENTS.md
/// "Calibration".
struct SpeedupRowOut {
  std::uint32_t jobs = 0;
  double gpu_seconds[4] = {0, 0, 0, 0};  ///< modeled device time per algo
  double cpu7_seconds = 0;   ///< fixed serial [7]/[8]-style baseline
  double cpu18_seconds = 0;  ///< fixed serial [18]-style baseline
};

/// Runs the speed-up sweep: calibrates per-evaluation CPU cost and
/// per-generation modeled GPU cost on short runs, then extrapolates
/// (documented in EXPERIMENTS.md).
std::vector<SpeedupRowOut> RunSpeedupSweep(Problem problem,
                                           const benchutil::Sweep& sweep,
                                           std::ostream& log);

/// Builds benchmark instance (n, index) for the sweep: CDD cycles through
/// the h grid, UCDDCP through plain instance indices.
Instance MakeSweepInstance(Problem problem, const benchutil::Sweep& sweep,
                           std::uint32_t n, std::uint32_t index);

/// Number of instances per size in the sweep.
std::uint32_t InstancesPerSize(Problem problem,
                               const benchutil::Sweep& sweep);

}  // namespace cdd::benchrun
